package experiments

import (
	"fmt"

	"icache/internal/icache"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("fig14", fig14)
}

// mjScheme labels the four shared-cache policies of §V-H.
type mjScheme string

const (
	mjDefault mjScheme = "Default" // shared LRU, no importance
	mjINDA    mjScheme = "INDA"    // cache managed by ShuffleNet's IVs only
	mjINDB    mjScheme = "INDB"    // cache managed by ResNet50's IVs only
	mjICache  mjScheme = "iCache"  // the §III-D AIV policy
)

// mjResult is one job's outcome under one policy.
type mjResult struct {
	epochSec float64
	hitRatio float64
}

// runMultiJob trains ShuffleNet and ResNet50 concurrently on the same
// CIFAR10 dataset with a shared cache under the given policy.
func runMultiJob(scheme mjScheme, opts Options) (shuffle, resnet mjResult, err error) {
	spec := opts.cifar()
	total, warmup := opts.perfEpochs()
	capBytes := int64(float64(spec.TotalBytes()) * 0.2)

	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		return mjResult{}, mjResult{}, err
	}

	mkJob := func(model train.ModelProfile, svc train.DataService, seed int64) (*train.Job, error) {
		cfg := train.DefaultConfig(model, spec)
		cfg.Epochs = total
		cfg.Seed = seed + opts.Seed
		return train.NewJob(cfg, svc)
	}

	var jobA, jobB *train.Job
	if scheme == mjDefault {
		shared := newSharedLRU(back, capBytes)
		if jobA, err = mkJob(train.ShuffleNet, shared.handle(), 1); err != nil {
			return mjResult{}, mjResult{}, err
		}
		if jobB, err = mkJob(train.ResNet50, shared.handle(), 2); err != nil {
			return mjResult{}, mjResult{}, err
		}
	} else {
		srv, err := icache.NewServer(back, icache.DefaultConfig(capBytes), sampling.DefaultIIS(), 42+opts.Seed)
		if err != nil {
			return mjResult{}, mjResult{}, err
		}
		policy := icache.CoordAIV
		if scheme == mjINDA || scheme == mjINDB {
			policy = icache.CoordSingleJob
		}
		coord := icache.NewCoordinator(srv, policy)
		handleA, err := coord.Register("shufflenet", sampling.DefaultIIS())
		if err != nil {
			return mjResult{}, mjResult{}, err
		}
		handleB, err := coord.Register("resnet50", sampling.DefaultIIS())
		if err != nil {
			return mjResult{}, mjResult{}, err
		}
		switch scheme {
		case mjINDA:
			coord.SetFavored(handleA.ID())
		case mjINDB:
			coord.SetFavored(handleB.ID())
		}
		if jobA, err = mkJob(train.ShuffleNet, handleA, 1); err != nil {
			return mjResult{}, mjResult{}, err
		}
		if jobB, err = mkJob(train.ResNet50, handleB, 2); err != nil {
			return mjResult{}, mjResult{}, err
		}
	}

	train.RunConcurrent(jobA, jobB)
	collect := func(j *train.Job) mjResult {
		st := steady(j.Results(), warmup)
		return mjResult{
			epochSec: st.AvgEpochTime().Seconds(),
			hitRatio: st.TotalCache().HitRatio(),
		}
	}
	return collect(jobA), collect(jobB), nil
}

// fig14 reproduces Figure 14: two jobs (ShuffleNet + ResNet50) sharing one
// cache under Default, INDA, INDB, and iCache's multi-job policy. The
// paper: INDx favours its own model and slows the other; iCache minimizes
// joint completion; ShuffleNet (the more I/O-bound job) earns the higher
// hit ratio under iCache.
func fig14(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig14",
		Title:  "Multi-job shared cache: per-epoch time and hit ratio",
		Header: []string{"policy", "shufflenet-time", "resnet50-time", "joint-time", "shufflenet-hit", "resnet50-hit"},
	}
	for _, scheme := range []mjScheme{mjDefault, mjINDA, mjINDB, mjICache} {
		a, b, err := runMultiJob(scheme, opts)
		if err != nil {
			return nil, err
		}
		rep.AddRow(string(scheme),
			fmt.Sprintf("%.3fs", a.epochSec), fmt.Sprintf("%.3fs", b.epochSec),
			fmt.Sprintf("%.3fs", a.epochSec+b.epochSec),
			fmtPct(a.hitRatio), fmtPct(b.hitRatio))
	}
	rep.Notes = append(rep.Notes,
		"paper: INDA speeds ShuffleNet 1.4x over INDB but slows ResNet50 1.2x; iCache has the best joint time",
		"paper: under iCache ShuffleNet gets the higher hit ratio (it benefits more from caching)")
	return rep, nil
}

// sharedLRU lets two jobs share one Default (LRU) service while keeping
// per-job stats; BeginEpoch calls from either job reshuffle only that job's
// schedule.
type sharedLRU struct {
	svc *sharedLRUService
}

func newSharedLRU(back *storage.Backend, capBytes int64) *sharedLRU {
	return &sharedLRU{svc: newSharedLRUService(back, capBytes)}
}

func (s *sharedLRU) handle() train.DataService { return &sharedLRUHandle{svc: s.svc} }

package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleReport() *Report {
	rep := &Report{ID: "x", Title: "demo", Header: []string{"model", "time"}}
	rep.AddRow("resnet18", "1.5s")
	rep.AddRow("with,comma", `with "quotes"`)
	rep.Notes = append(rep.Notes, "a note")
	return rep
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleReport().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "model,time" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "#note") {
		t.Fatalf("note row missing: %q", lines[3])
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := sampleReport().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID   string              `json:"id"`
		Rows []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if got.ID != "x" || len(got.Rows) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if got.Rows[0]["model"] != "resnet18" {
		t.Fatalf("row keyed wrong: %+v", got.Rows[0])
	}
}

func TestWriteJSONExtraColumns(t *testing.T) {
	rep := &Report{ID: "y", Header: []string{"a"}}
	rep.AddRow("1", "2") // more cells than headers
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "col1") {
		t.Fatal("overflow column not keyed col1")
	}
}

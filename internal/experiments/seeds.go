package experiments

import (
	"fmt"
	"math"

	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("ext-seeds", extSeeds)
}

// extSeeds quantifies run-to-run variation: the headline speedup and hit
// ratio across independent seeds. The simulation is deterministic per seed,
// so spread here reflects genuine sensitivity to sampling randomness — if
// the paper's 2× claim only held for lucky seeds, this is where it would
// show.
func extSeeds(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "ext-seeds",
		Title:  "Robustness: headline metrics across seeds (ShuffleNet/CIFAR10)",
		Header: []string{"seed", "default-epoch", "icache-epoch", "speedup", "icache-hit"},
	}
	total, warmup := opts.perfEpochs()
	seeds := []int64{0, 1, 2}
	if !opts.Quick {
		seeds = []int64{0, 1, 2, 3, 4}
	}
	var speedups, hits []float64
	for _, seed := range seeds {
		o := opts
		o.Seed = seed
		def, err := runOne(SchemeDefault, train.ShuffleNet, o.cifar(), storage.OrangeFS(), 0.2, total, nil, o)
		if err != nil {
			return nil, err
		}
		ic, err := runOne(SchemeICache, train.ShuffleNet, o.cifar(), storage.OrangeFS(), 0.2, total, nil, o)
		if err != nil {
			return nil, err
		}
		d := steady(def, warmup).AvgEpochTime().Seconds()
		i := steady(ic, warmup).AvgEpochTime().Seconds()
		hit := steady(ic, warmup).TotalCache().HitRatio()
		speedups = append(speedups, d/i)
		hits = append(hits, hit)
		rep.AddRow(fmt.Sprintf("%d", seed),
			fmt.Sprintf("%.3fs", d), fmt.Sprintf("%.3fs", i), fmtX(d/i), fmtPct(hit))
	}
	ms, ss := meanStd(speedups)
	mh, sh := meanStd(hits)
	rep.AddRow("mean±std", "", "", fmt.Sprintf("%.2fx±%.2f", ms, ss), fmt.Sprintf("%.1f%%±%.1f", 100*mh, 100*sh))
	rep.Notes = append(rep.Notes, "per-seed determinism means spread reflects sampling randomness only")
	return rep, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestExtTTAShape asserts the combined speed+accuracy result: iCache
// reaches the target in clearly less time.
func TestExtTTAShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("ext-tta", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[2] == "not reached" || row[4] == "not reached" {
			t.Fatalf("%s: target not reached: %v", row[0], row)
		}
		if sp := parseX(t, row[6]); sp < 1.3 {
			t.Errorf("%s: TTA speedup %.2f < 1.3", row[0], sp)
		}
	}
}

// TestExtTierShape asserts the spill tier helps: higher hit ratio, no
// slower epochs.
func TestExtTierShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("ext-tier", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	dram, tier := rep.Rows[0], rep.Rows[1]
	if parsePct(t, tier[2]) <= parsePct(t, dram[2]) {
		t.Errorf("tier hit ratio %s not above dram-only %s", tier[2], dram[2])
	}
	if parseSec(t, tier[1]) > parseSec(t, dram[1]) {
		t.Errorf("tier epoch %s slower than dram-only %s", tier[1], dram[1])
	}
	hits, err := strconv.Atoi(tier[3])
	if err != nil || hits == 0 {
		t.Errorf("tier2 hits/epoch = %q", tier[3])
	}
}

// TestExtPoliciesShape asserts the policy spread: recency ~2%, iCache on
// top.
func TestExtPoliciesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("ext-policies", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	hit := map[string]float64{}
	for _, row := range rep.Rows {
		hit[row[0]] = parsePct(t, row[1+1])
	}
	if hit["lru"] > 0.06 || hit["fifo"] > 0.06 {
		t.Errorf("recency policies not starved: lru=%.3f fifo=%.3f", hit["lru"], hit["fifo"])
	}
	for _, p := range []string{"fifo", "lru", "clock", "lfu"} {
		if hit["icache"] <= hit[p] {
			t.Errorf("icache hit %.3f not above %s %.3f", hit["icache"], p, hit[p])
		}
	}
}

// TestExtEchoShape asserts echoing's stall→compute conversion.
func TestExtEchoShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("ext-echo", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row
	}
	def, echo := byName["default"], byName["default+echo2"]
	if parseSec(t, echo[2]) >= parseSec(t, def[2]) {
		t.Error("echo did not reduce stall")
	}
	if parseSec(t, echo[3]) <= parseSec(t, def[3]) {
		t.Error("echo did not add compute")
	}
}

// TestExtSeedsTight asserts run-to-run stability of the headline.
func TestExtSeedsTight(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("ext-seeds", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var speedups []float64
	for _, row := range rep.Rows {
		if strings.HasSuffix(row[3], "x") && !strings.Contains(row[3], "±") {
			speedups = append(speedups, parseX(t, row[3]))
		}
	}
	if len(speedups) < 3 {
		t.Fatalf("only %d per-seed rows", len(speedups))
	}
	min, max := speedups[0], speedups[0]
	for _, s := range speedups {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 0.3 {
		t.Errorf("speedup spread %.2f–%.2f too wide", min, max)
	}
	if min < 1.7 {
		t.Errorf("worst-seed speedup %.2f below 1.7", min)
	}
}

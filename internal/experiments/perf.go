package experiments

import (
	"fmt"

	"icache/internal/metrics"
	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("fig8", fig8)
	register("fig9", fig9)
	register("fig10", fig10)
	register("fig11", fig11)
}

// fig8Schemes are the compared systems of §V-C in presentation order.
var fig8Schemes = []Scheme{SchemeDefault, SchemeBase, SchemeQuiver, SchemeCoorDL, SchemeILFU, SchemeICache, SchemeOracle}

// fig8 reproduces Figure 8: average per-epoch training time for all eight
// models under all seven systems. The paper's headline: iCache beats
// Default/Base by up to 2.3×, Quiver by 2.0×, CoorDL by 1.9×, iLFU by 1.6×,
// and approaches Oracle on the compute-heavy ImageNet models.
func fig8(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig8",
		Title:  "Avg training time per epoch (steady state)",
		Header: []string{"model", "default", "base", "quiver", "coordl", "ilfu", "icache", "oracle", "icache-speedup"},
	}
	total, warmup := opts.perfEpochs()
	runSet := func(model train.ModelProfile, specName string) error {
		spec := opts.cifar()
		if specName == "imagenet" {
			spec = opts.imagenet()
		}
		row := []string{model.Name}
		var defT, icT float64
		for _, sch := range fig8Schemes {
			rs, err := runOne(sch, model, spec, storage.OrangeFS(), 0.2, total, nil, opts)
			if err != nil {
				return err
			}
			sec := steady(rs, warmup).AvgEpochTime().Seconds()
			if sch == SchemeDefault {
				defT = sec
			}
			if sch == SchemeICache {
				icT = sec
			}
			row = append(row, fmt.Sprintf("%.3fs", sec))
		}
		row = append(row, fmtX(defT/icT))
		rep.AddRow(row...)
		return nil
	}
	for _, m := range train.CIFARModels() {
		if err := runSet(m, "cifar"); err != nil {
			return nil, err
		}
	}
	for _, m := range train.ImageNetModels() {
		if err := runSet(m, "imagenet"); err != nil {
			return nil, err
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: iCache speedups up to 2.3x (vs Default), 2.0x (Quiver), 1.9x (CoorDL), 1.6x (iLFU)",
		"paper: on VGG11 and DenseNet121 iCache runs at Oracle speed")
	return rep, nil
}

// fig9 reproduces Figure 9: per-epoch I/O (data-stall) time on CIFAR10. The
// paper reports iCache cutting I/O time 2.4× on average vs Default, with
// Quiver/CoorDL/iLFU at 1.2×/1.3×/1.4×, and Base showing *more* I/O time
// than Default because CIS shrinks the compute that used to hide it.
func fig9(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig9",
		Title:  "I/O (data-stall) time per epoch, CIFAR10 (steady state)",
		Header: []string{"model", "default", "base", "quiver", "coordl", "ilfu", "icache", "icache-io-speedup"},
	}
	total, warmup := opts.perfEpochs()
	schemes := []Scheme{SchemeDefault, SchemeBase, SchemeQuiver, SchemeCoorDL, SchemeILFU, SchemeICache}
	for _, model := range train.CIFARModels() {
		row := []string{model.Name}
		var defIO, icIO float64
		for _, sch := range schemes {
			rs, err := runOne(sch, model, opts.cifar(), storage.OrangeFS(), 0.2, total, nil, opts)
			if err != nil {
				return nil, err
			}
			io := steady(rs, warmup).AvgIOStall().Seconds()
			if sch == SchemeDefault {
				defIO = io
			}
			if sch == SchemeICache {
				icIO = io
			}
			row = append(row, fmt.Sprintf("%.3fs", io))
		}
		row = append(row, fmtX(defIO/icIO))
		rep.AddRow(row...)
	}
	rep.Notes = append(rep.Notes,
		"paper: iCache reduces I/O time 2.4x on average; Quiver 1.2x, CoorDL 1.3x, iLFU 1.4x",
		"paper: Base's I/O time exceeds Default's (less compute left to hide it behind)")
	return rep, nil
}

// ablationRungs are Fig. 10/11's incremental configurations: Base
// (CIS+LRU), +IIS (IIS+LRU), +HC (IIS + importance-managed H-cache), All
// (H-cache + L-cache).
var ablationRungs = []Scheme{SchemeBase, SchemeIIS, SchemeHC, SchemeICache}

var ablationNames = map[Scheme]string{SchemeBase: "Base", SchemeIIS: "+IIS", SchemeHC: "+HC", SchemeICache: "All"}

// ablationRun collects per-rung stats for one model.
func ablationRun(model train.ModelProfile, opts Options) (map[Scheme]metrics.RunStats, error) {
	total, warmup := opts.perfEpochs()
	out := make(map[Scheme]metrics.RunStats, len(ablationRungs))
	for _, sch := range ablationRungs {
		rs, err := runOne(sch, model, opts.cifar(), storage.OrangeFS(), 0.2, total, nil, opts)
		if err != nil {
			return nil, err
		}
		out[sch] = steady(rs, warmup)
	}
	return out, nil
}

// fig10 reproduces Figure 10: the impact of each iCache technique on total
// training time for ShuffleNet and ResNet50. The paper's ShuffleNet ladder:
// +IIS 1.4×, +HC 1.7×, All 2.3× over Base.
func fig10(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig10",
		Title:  "Ablation: per-epoch time by technique (CIFAR10)",
		Header: []string{"model", "Base", "+IIS", "+HC", "All", "iis-speedup", "hc-speedup", "all-speedup"},
	}
	for _, model := range []train.ModelProfile{train.ShuffleNet, train.ResNet50} {
		stats, err := ablationRun(model, opts)
		if err != nil {
			return nil, err
		}
		base := stats[SchemeBase].AvgEpochTime().Seconds()
		row := []string{model.Name}
		for _, sch := range ablationRungs {
			row = append(row, fmt.Sprintf("%.3fs", stats[sch].AvgEpochTime().Seconds()))
		}
		row = append(row,
			fmtX(base/stats[SchemeIIS].AvgEpochTime().Seconds()),
			fmtX(base/stats[SchemeHC].AvgEpochTime().Seconds()),
			fmtX(base/stats[SchemeICache].AvgEpochTime().Seconds()))
		rep.AddRow(row...)
	}
	rep.Notes = append(rep.Notes, "paper (ShuffleNet): +IIS 1.4x, +HC 1.7x, All 2.3x over Base")
	return rep, nil
}

// fig11 reproduces Figure 11: the same ablation's I/O time and cache hit
// ratio. The paper's hit-ratio ladder for ShuffleNet: 2% → 25% (+HC) → 37%
// (All).
func fig11(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig11",
		Title:  "Ablation: I/O time and cache hit ratio (CIFAR10)",
		Header: []string{"model", "rung", "io-time", "hit-ratio"},
	}
	for _, model := range []train.ModelProfile{train.ShuffleNet, train.ResNet50} {
		stats, err := ablationRun(model, opts)
		if err != nil {
			return nil, err
		}
		for _, sch := range ablationRungs {
			st := stats[sch]
			rep.AddRow(model.Name, ablationNames[sch],
				fmt.Sprintf("%.3fs", st.AvgIOStall().Seconds()),
				fmtPct(st.TotalCache().HitRatio()))
		}
	}
	rep.Notes = append(rep.Notes, "paper (ShuffleNet): hit ratio 2% (Base) -> 25% (+HC) -> 37% (All)")
	return rep, nil
}

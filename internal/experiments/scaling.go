package experiments

import (
	"fmt"

	"icache/internal/cache"
	"icache/internal/icache"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("fig12", fig12)
	register("fig13", fig13)
	register("fig15", fig15)
	register("fig16", fig16)
}

// fig12 reproduces Figure 12: single-job multi-GPU training of ResNet50 on
// CIFAR10 under Default vs iCache. The paper: iCache averages 2.3× across
// GPU counts, while Default barely moves because I/O, not compute, bounds
// the epoch.
func fig12(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig12",
		Title:  "Multi-GPU training time per epoch (ResNet50/CIFAR10)",
		Header: []string{"gpus", "default", "icache", "speedup"},
	}
	total, warmup := opts.perfEpochs()
	for _, gpus := range []int{1, 2, 4, 8} {
		mutate := func(c *train.Config) { c.GPUs = gpus }
		def, err := runOne(SchemeDefault, train.ResNet50, opts.cifar(), storage.OrangeFS(), 0.2, total, mutate, opts)
		if err != nil {
			return nil, err
		}
		ic, err := runOne(SchemeICache, train.ResNet50, opts.cifar(), storage.OrangeFS(), 0.2, total, mutate, opts)
		if err != nil {
			return nil, err
		}
		d := steady(def, warmup).AvgEpochTime().Seconds()
		i := steady(ic, warmup).AvgEpochTime().Seconds()
		rep.AddRow(fmt.Sprintf("%d", gpus), fmt.Sprintf("%.3fs", d), fmt.Sprintf("%.3fs", i), fmtX(d/i))
	}
	rep.Notes = append(rep.Notes,
		"paper: iCache ~2.3x at every GPU count; Default's epoch time stays flat as GPUs grow")
	return rep, nil
}

// fig13 reproduces Figure 13: distributed data-parallel training on two and
// four nodes over a shared NFS backend. Each node has one GPU and a cache
// worth 20% of the dataset. The paper reports ≥8.6× (2 nodes) and ≥7.6×
// (4 nodes) over Default, with the 4-node speedup lower because the joint
// cache's hit-ratio advantage shrinks.
func fig13(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig13",
		Title:  "Distributed training over NFS (per-epoch time)",
		Header: []string{"model", "nodes", "default", "icache", "speedup", "icache-hit"},
	}
	total, warmup := opts.perfEpochs()
	spec := opts.cifar()
	perNode := int64(float64(spec.TotalBytes()) * 0.2)
	for _, model := range []train.ModelProfile{train.ResNet18, train.ResNet50} {
		for _, nodes := range []int{2, 4} {
			runDist := func(mk func(*storage.Backend) (train.DistService, error)) (metrics.RunStats, error) {
				back, err := storage.NewBackend(spec, storage.NFS())
				if err != nil {
					return metrics.RunStats{}, err
				}
				svc, err := mk(back)
				if err != nil {
					return metrics.RunStats{}, err
				}
				cfg := train.DefaultConfig(model, spec)
				cfg.Epochs = total
				cfg.Seed = 1 + opts.Seed
				job, err := train.NewDistJob(cfg, svc)
				if err != nil {
					return metrics.RunStats{}, err
				}
				return job.Run(), nil
			}
			def, err := runDist(func(b *storage.Backend) (train.DistService, error) {
				return cache.NewDistDefault(b, nodes, perNode, cache.DefaultServiceConfig()), nil
			})
			if err != nil {
				return nil, err
			}
			ic, err := runDist(func(b *storage.Backend) (train.DistService, error) {
				return icache.NewCluster(b, icache.DefaultClusterConfig(nodes, perNode), sampling.DefaultIIS(), 42+opts.Seed)
			})
			if err != nil {
				return nil, err
			}
			d := steady(def, warmup).AvgEpochTime().Seconds()
			i := steady(ic, warmup).AvgEpochTime().Seconds()
			rep.AddRow(model.Name, fmt.Sprintf("%dS", nodes),
				fmt.Sprintf("%.3fs", d), fmt.Sprintf("%.3fs", i), fmtX(d/i),
				fmtPct(steady(ic, warmup).TotalCache().HitRatio()))
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: >=8.6x (2S) and >=7.6x (4S) over Default; 4S speedup below 2S",
		"the distributed Default duplicates hot samples per node and hammers the single NFS server",
		"reproduction deviates in magnitude (see EXPERIMENTS.md): our first-order NFS model bounds the",
		"speedup near the fetch-count ratio; the paper's >=8.6x likely includes NFS client pathologies")
	return rep, nil
}

// fig15 reproduces Figure 15: sensitivity to the number of prefetching
// workers (ResNet18/CIFAR10). The paper: iCache's speedup decays 3.9×→1.2×
// as workers grow 2→16, because extra workers hide more I/O for Default.
func fig15(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig15",
		Title:  "Worker-count sensitivity (ResNet18/CIFAR10)",
		Header: []string{"workers", "default", "icache", "speedup", "default-stall-frac"},
	}
	total, warmup := opts.perfEpochs()
	for _, workers := range []int{2, 4, 8, 16} {
		mutate := func(c *train.Config) { c.Workers = workers }
		def, err := runOne(SchemeDefault, train.ResNet18, opts.cifar(), storage.OrangeFS(), 0.2, total, mutate, opts)
		if err != nil {
			return nil, err
		}
		ic, err := runOne(SchemeICache, train.ResNet18, opts.cifar(), storage.OrangeFS(), 0.2, total, mutate, opts)
		if err != nil {
			return nil, err
		}
		ds, is := steady(def, warmup), steady(ic, warmup)
		d, i := ds.AvgEpochTime().Seconds(), is.AvgEpochTime().Seconds()
		rep.AddRow(fmt.Sprintf("%d", workers),
			fmt.Sprintf("%.3fs", d), fmt.Sprintf("%.3fs", i), fmtX(d/i),
			fmtPct(float64(ds.AvgIOStall())/float64(ds.AvgEpochTime())))
	}
	rep.Notes = append(rep.Notes,
		"paper: speedup decays 3.9x -> 1.2x as workers grow 2 -> 16; stall fraction falls 96.7% -> 28.9%")
	return rep, nil
}

// fig16 reproduces Figure 16: sensitivity to cache size (ResNet18/CIFAR10,
// 20–80% of the dataset). The paper: iCache keeps ≥1.7× and its hit ratio
// stays ≥1.7× Default's even at 80%.
func fig16(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig16",
		Title:  "Cache-size sensitivity (ResNet18/CIFAR10)",
		Header: []string{"cache", "default", "icache", "speedup", "default-hit", "icache-hit"},
	}
	total, warmup := opts.perfEpochs()
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
		def, err := runOne(SchemeDefault, train.ResNet18, opts.cifar(), storage.OrangeFS(), frac, total, nil, opts)
		if err != nil {
			return nil, err
		}
		ic, err := runOne(SchemeICache, train.ResNet18, opts.cifar(), storage.OrangeFS(), frac, total, nil, opts)
		if err != nil {
			return nil, err
		}
		ds, is := steady(def, warmup), steady(ic, warmup)
		d, i := ds.AvgEpochTime().Seconds(), is.AvgEpochTime().Seconds()
		rep.AddRow(fmtPct(frac),
			fmt.Sprintf("%.3fs", d), fmt.Sprintf("%.3fs", i), fmtX(d/i),
			fmtPct(ds.TotalCache().HitRatio()), fmtPct(is.TotalCache().HitRatio()))
	}
	rep.Notes = append(rep.Notes,
		"paper: >=1.7x speedup across 20-80% cache sizes; hit-ratio advantage persists at 80%")
	return rep, nil
}

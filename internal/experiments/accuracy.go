package experiments

import (
	"fmt"

	"icache/internal/icache"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("tab1", tab1)
	register("tab2", tab2)
	register("tab3", tab3)
	register("fig7", fig7)
}

// accuracyPair trains one model under Default and iCache and reports final
// Top-1/Top-5.
func accuracyPair(model train.ModelProfile, specName string, opts Options) ([]string, error) {
	spec := opts.cifar()
	if specName == "imagenet" {
		spec = opts.imagenet()
	}
	epochs := opts.accuracyEpochs()
	def, err := runOne(SchemeDefault, model, spec, storage.OrangeFS(), 0.2, epochs, nil, opts)
	if err != nil {
		return nil, err
	}
	ic, err := runOne(SchemeICache, model, spec, storage.OrangeFS(), 0.2, epochs, nil, opts)
	if err != nil {
		return nil, err
	}
	return []string{
		model.Name,
		fmtAcc(def.FinalTop1()), fmtAcc(def.FinalTop5()),
		fmtAcc(ic.FinalTop1()), fmtAcc(ic.FinalTop5()),
		fmt.Sprintf("%.2f", def.FinalTop1()-ic.FinalTop1()),
	}, nil
}

// tab1 reproduces Table I: CIFAR10 accuracy under Default vs iCache. The
// paper bounds iCache's Top-1 loss below 1%.
func tab1(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "tab1",
		Title:  "CIFAR10 accuracy: Default vs iCache (90 epochs)",
		Header: []string{"model", "def-top1", "def-top5", "icache-top1", "icache-top5", "top1-loss"},
	}
	for _, m := range train.CIFARModels() {
		row, err := accuracyPair(m, "cifar", opts)
		if err != nil {
			return nil, err
		}
		rep.AddRow(row...)
	}
	rep.Notes = append(rep.Notes, "paper: iCache Top-1 losses 0.36-0.80%, all under 1%")
	return rep, nil
}

// tab2 reproduces Table II: ImageNet accuracy; the paper bounds losses
// below 2%.
func tab2(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "tab2",
		Title:  "ImageNet accuracy: Default vs iCache (90 epochs)",
		Header: []string{"model", "def-top1", "def-top5", "icache-top1", "icache-top5", "top1-loss"},
	}
	for _, m := range train.ImageNetModels() {
		row, err := accuracyPair(m, "imagenet", opts)
		if err != nil {
			return nil, err
		}
		rep.AddRow(row...)
	}
	rep.Notes = append(rep.Notes, "paper: iCache losses under 2% on ImageNet")
	return rep, nil
}

// tab3 reproduces Table III: the substitution-policy study of §V-E — no
// substitution (Def) vs substituting missed L-samples from the H-cache
// (ST_HC) vs from the L-cache (ST_LC). ST_LC must degrade accuracy less.
func tab3(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "tab3",
		Title:  "Substitution policy vs accuracy (CIFAR10)",
		Header: []string{"model", "def-top1", "st_hc-top1", "st_lc-top1", "hc-drop", "lc-drop"},
	}
	epochs := opts.accuracyEpochs()
	spec := opts.cifar()
	for _, model := range []train.ModelProfile{train.ResNet18, train.ShuffleNet} {
		run := func(sub icache.SubstitutePolicy) (metrics.RunStats, error) {
			back, err := storage.NewBackend(spec, storage.OrangeFS())
			if err != nil {
				return metrics.RunStats{}, err
			}
			cfg := icache.DefaultConfig(int64(float64(spec.TotalBytes()) * 0.2))
			cfg.Substitute = sub
			srv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 42+opts.Seed)
			if err != nil {
				return metrics.RunStats{}, err
			}
			tcfg := train.DefaultConfig(model, spec)
			tcfg.Epochs = epochs
			tcfg.Seed = 1 + opts.Seed
			job, err := train.NewJob(tcfg, srv)
			if err != nil {
				return metrics.RunStats{}, err
			}
			return job.Run(), nil
		}
		def, err := run(icache.SubstituteNone)
		if err != nil {
			return nil, err
		}
		hc, err := run(icache.SubstituteHCache)
		if err != nil {
			return nil, err
		}
		lc, err := run(icache.SubstituteLCache)
		if err != nil {
			return nil, err
		}
		rep.AddRow(model.Name,
			fmtAcc(def.FinalTop1()), fmtAcc(hc.FinalTop1()), fmtAcc(lc.FinalTop1()),
			fmt.Sprintf("%.2f", def.FinalTop1()-hc.FinalTop1()),
			fmt.Sprintf("%.2f", def.FinalTop1()-lc.FinalTop1()))
	}
	rep.Notes = append(rep.Notes,
		"paper: ST_HC drops 0.81-1.03% Top-1, ST_LC only 0.56-0.80% — iCache ships ST_LC")
	return rep, nil
}

// fig7 reproduces Figure 7: Top-5 convergence curves for ResNet18/CIFAR10
// and SqueezeNet/ImageNet under Default vs iCache; the curves must track
// each other closely.
func fig7(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig7",
		Title:  "Top-5 accuracy convergence (Default vs iCache)",
		Header: []string{"epoch", "r18-def", "r18-icache", "sqz-def", "sqz-icache"},
	}
	epochs := opts.accuracyEpochs()
	r18def, err := runOne(SchemeDefault, train.ResNet18, opts.cifar(), storage.OrangeFS(), 0.2, epochs, nil, opts)
	if err != nil {
		return nil, err
	}
	r18ic, err := runOne(SchemeICache, train.ResNet18, opts.cifar(), storage.OrangeFS(), 0.2, epochs, nil, opts)
	if err != nil {
		return nil, err
	}
	sqzdef, err := runOne(SchemeDefault, train.SqueezeNet, opts.imagenet(), storage.OrangeFS(), 0.2, epochs, nil, opts)
	if err != nil {
		return nil, err
	}
	sqzic, err := runOne(SchemeICache, train.SqueezeNet, opts.imagenet(), storage.OrangeFS(), 0.2, epochs, nil, opts)
	if err != nil {
		return nil, err
	}
	step := epochs / 15
	if step < 1 {
		step = 1
	}
	for e := 0; e < epochs; e += step {
		rep.AddRow(fmt.Sprintf("%d", e),
			fmtAcc(r18def.Epochs[e].Top5), fmtAcc(r18ic.Epochs[e].Top5),
			fmtAcc(sqzdef.Epochs[e].Top5), fmtAcc(sqzic.Epochs[e].Top5))
	}
	last := epochs - 1
	rep.AddRow(fmt.Sprintf("%d", last),
		fmtAcc(r18def.Epochs[last].Top5), fmtAcc(r18ic.Epochs[last].Top5),
		fmtAcc(sqzdef.Epochs[last].Top5), fmtAcc(sqzic.Epochs[last].Top5))
	rep.Notes = append(rep.Notes, "paper: iCache curves closely match Default's")
	return rep, nil
}

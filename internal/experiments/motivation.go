package experiments

import (
	"fmt"

	"icache/internal/dataset"
	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("fig1", fig1)
	register("fig2", fig2)
	register("fig3", fig3)
}

// fig1 reproduces Figure 1: the fraction of training time spent on I/O for
// four CIFAR10 models on four GPUs as batch size grows 256→2048, under the
// Default LRU cache (20%) over OrangeFS. The paper reports the average I/O
// fraction rising from 44% to 89%.
func fig1(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig1",
		Title:  "I/O-time fraction vs batch size (Default, 4 GPUs, OrangeFS)",
		Header: []string{"model", "bs=256", "bs=512", "bs=1024", "bs=2048"},
	}
	total, warmup := opts.perfEpochs()
	batchSizes := []int{256, 512, 1024, 2048}
	var avg [4]float64
	for _, model := range train.CIFARModels() {
		row := []string{model.Name}
		for bi, bs := range batchSizes {
			rs, err := runOne(SchemeDefault, model, opts.cifar(), storage.OrangeFS(), 0.2, total,
				func(c *train.Config) { c.BatchSize = bs; c.GPUs = 4 }, opts)
			if err != nil {
				return nil, err
			}
			st := steady(rs, warmup)
			frac := float64(st.AvgIOStall()) / float64(st.AvgEpochTime())
			avg[bi] += frac / float64(len(train.CIFARModels()))
			row = append(row, fmtPct(frac))
		}
		rep.AddRow(row...)
	}
	rep.AddRow("average", fmtPct(avg[0]), fmtPct(avg[1]), fmtPct(avg[2]), fmtPct(avg[3]))
	rep.Notes = append(rep.Notes, "paper: average I/O fraction rises from 44% (bs=256) to 89% (bs=2048)")
	return rep, nil
}

// fig2 reproduces Figure 2: computing-oriented IS (CIS) vs no IS on (a) a
// local tmpfs without a cache and (b) remote OrangeFS behind a 20% LRU
// cache. CIS helps only in (a): the paper reports 1.2× total on tmpfs and
// just 1.02× on the remote store.
func fig2(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig2",
		Title:  "CIS speedup: local tmpfs vs remote OrangeFS (per-epoch time)",
		Header: []string{"model", "tmpfs", "tmpfs+CIS", "speedup", "remote", "remote+CIS", "speedup"},
	}
	total, warmup := opts.perfEpochs()
	for _, model := range train.CIFARModels() {
		run := func(scheme Scheme, cfg storage.Config) (float64, error) {
			rs, err := runOne(scheme, model, opts.cifar(), cfg, 0.2, total, func(c *train.Config) { c.GPUs = 1 }, opts)
			if err != nil {
				return 0, err
			}
			return steady(rs, warmup).AvgEpochTime().Seconds(), nil
		}
		tmpfs, err := run(SchemeNoCache, storage.Tmpfs())
		if err != nil {
			return nil, err
		}
		tmpfsCIS, err := run(SchemeNoCacheCIS, storage.Tmpfs())
		if err != nil {
			return nil, err
		}
		remote, err := run(SchemeDefault, storage.OrangeFS())
		if err != nil {
			return nil, err
		}
		remoteCIS, err := run(SchemeBase, storage.OrangeFS())
		if err != nil {
			return nil, err
		}
		rep.AddRow(model.Name,
			fmt.Sprintf("%.3fs", tmpfs), fmt.Sprintf("%.3fs", tmpfsCIS), fmtX(tmpfs/tmpfsCIS),
			fmt.Sprintf("%.3fs", remote), fmt.Sprintf("%.3fs", remoteCIS), fmtX(remote/remoteCIS))
	}
	rep.Notes = append(rep.Notes, "paper: CIS gives ~1.2x on tmpfs but only ~1.02x on the remote store")
	return rep, nil
}

// fig3 reproduces Figure 3: the importance value of three tracked samples
// across epochs while training ResNet18 on CIFAR10 with loss-based IS — the
// values must drift, which is the premise of the shadow-heap refresh.
func fig3(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig3",
		Title:  "Importance-value drift of samples 0..2 across epochs (ResNet18/CIFAR10)",
		Header: []string{"epoch", "sample0", "sample1", "sample2"},
	}
	spec := opts.cifar()
	svc, _, err := newService(SchemeICache, spec, storage.OrangeFS(), 0.2, 42+opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg := train.DefaultConfig(train.ResNet18, spec)
	cfg.Epochs = 12
	cfg.Seed = 1 + opts.Seed
	job, err := train.NewJob(cfg, svc)
	if err != nil {
		return nil, err
	}
	tracked := []dataset.SampleID{0, 1, 2}
	epochSeen := 0
	var drift [3]bool
	var prev [3]float64
	for !job.Done() {
		job.Step()
		if got := len(job.Results().Epochs); got > epochSeen {
			epochSeen = got
			row := []string{fmt.Sprintf("%d", epochSeen-1)}
			for i, id := range tracked {
				iv := job.Tracker().Value(id)
				row = append(row, fmt.Sprintf("%.4f", iv))
				if epochSeen > 1 && iv != prev[i] {
					drift[i] = true
				}
				prev[i] = iv
			}
			rep.AddRow(row...)
		}
	}
	for i, d := range drift {
		if !d {
			rep.Notes = append(rep.Notes, fmt.Sprintf("WARNING: sample %d importance never changed", i))
		}
	}
	rep.Notes = append(rep.Notes, "paper: the same sample's importance value varies across epochs")
	return rep, nil
}

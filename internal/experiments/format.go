package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV renders the report as RFC 4180 CSV: a header row, then data
// rows. Notes are emitted as trailing comment-style rows prefixed with
// "#note" in the first column so spreadsheet imports keep them visible.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	for _, n := range r.Notes {
		if err := cw.Write([]string{"#note", n}); err != nil {
			return fmt.Errorf("experiments: csv note: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// reportJSON is the stable JSON shape of a report.
type reportJSON struct {
	ID     string              `json:"id"`
	Title  string              `json:"title"`
	Header []string            `json:"header"`
	Rows   []map[string]string `json:"rows"`
	Notes  []string            `json:"notes,omitempty"`
}

// WriteJSON renders the report as a JSON object whose rows are keyed by the
// header columns, so downstream tooling does not depend on column order.
func (r *Report) WriteJSON(w io.Writer) error {
	out := reportJSON{ID: r.ID, Title: r.Title, Header: r.Header, Notes: r.Notes}
	for _, row := range r.Rows {
		m := make(map[string]string, len(row))
		for i, cell := range row {
			key := fmt.Sprintf("col%d", i)
			if i < len(r.Header) {
				key = r.Header[i]
			}
			m[key] = cell
		}
		out.Rows = append(out.Rows, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Package experiments contains one runner per table and figure in the
// paper's evaluation (§V), plus the motivation experiments of §II. Each
// runner builds the workload from the other packages, executes it in
// virtual time, and returns a Report with the same rows/series the paper
// presents. DESIGN.md's per-experiment index maps IDs to paper artifacts.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"icache/internal/cache"
	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

// Options control experiment scale. Zero value = paper scale.
type Options struct {
	// Quick shrinks epoch counts and the ImageNet surrogate so the whole
	// suite runs in seconds (used by `go test -bench` and CI).
	Quick bool
	// Seed offsets every job seed, for run-to-run variation studies.
	Seed int64
}

// perfEpochs returns (total, warmup) epoch counts for timing experiments;
// steady-state rows average epochs ≥ warmup so the history-based sampler
// has converged, matching the paper's measurement of warmed-up training.
func (o Options) perfEpochs() (total, warmup int) {
	if o.Quick {
		return 10, 6
	}
	return 16, 10
}

// accuracyEpochs returns the epoch count for accuracy experiments (the
// paper trains 90 epochs).
func (o Options) accuracyEpochs() int {
	if o.Quick {
		return 30
	}
	return 90
}

// cifar returns the CIFAR10 dataset.
func (o Options) cifar() dataset.Spec { return dataset.CIFAR10() }

// imagenet returns the ImageNet surrogate at experiment scale.
func (o Options) imagenet() dataset.Spec {
	if o.Quick {
		s := dataset.ImageNetScaled()
		s.NumSamples /= 5 // 2% of the real cardinality
		s.Name = "imagenet-2pct"
		return s
	}
	return dataset.ImageNetScaled()
}

// Report is one experiment's output table.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner executes one experiment.
type Runner func(Options) (*Report, error)

// registry maps experiment IDs to runners, filled by init functions in the
// per-area files.
var registry = map[string]Runner{}

var order []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	order = append(order, id)
}

// Run executes the experiment with the given ID.
func Run(id string, opts Options) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(opts)
}

// IDs lists every registered experiment in presentation order: the paper's
// figures and tables first (numerically), then the design ablations, then
// the extensions.
func IDs() []string {
	out := append([]string(nil), order...)
	sort.SliceStable(out, func(i, j int) bool { return idRank(out[i]) < idRank(out[j]) })
	return out
}

// idRank orders experiment IDs for presentation.
func idRank(id string) int {
	var n int
	switch {
	case strings.HasPrefix(id, "fig"):
		fmt.Sscanf(id, "fig%d", &n)
		return n
	case strings.HasPrefix(id, "tab"):
		fmt.Sscanf(id, "tab%d", &n)
		return 100 + n
	case strings.HasPrefix(id, "abl-"):
		return 200
	default: // ext-*
		return 300
	}
}

// Scheme identifies a data-service configuration under test.
type Scheme string

// The schemes of §V-A plus the ablation rungs of §V-D.
const (
	SchemeDefault    Scheme = "default"
	SchemeBase       Scheme = "base"
	SchemeQuiver     Scheme = "quiver"
	SchemeCoorDL     Scheme = "coordl"
	SchemeILFU       Scheme = "ilfu"
	SchemeICache     Scheme = "icache"
	SchemeOracle     Scheme = "oracle"
	SchemeIIS        Scheme = "+iis" // IIS over plain LRU (Fig. 10 rung)
	SchemeHC         Scheme = "+hc"  // IIS + H-cache, no L-cache
	SchemeNoCache    Scheme = "nocache"
	SchemeNoCacheCIS Scheme = "nocache-cis"
)

// newService builds a data service of the given scheme over a fresh
// backend. capFrac is the cache size as a fraction of the dataset.
func newService(scheme Scheme, spec dataset.Spec, storageCfg storage.Config, capFrac float64, seed int64) (train.DataService, *storage.Backend, error) {
	back, err := storage.NewBackend(spec, storageCfg)
	if err != nil {
		return nil, nil, err
	}
	capBytes := int64(float64(spec.TotalBytes()) * capFrac)
	svcCfg := cache.DefaultServiceConfig()
	switch scheme {
	case SchemeDefault:
		return cache.NewDefault(back, capBytes, svcCfg), back, nil
	case SchemeBase:
		return cache.NewBase(back, capBytes, svcCfg, sampling.DefaultCIS()), back, nil
	case SchemeQuiver:
		return cache.NewQuiver(back, capBytes, svcCfg), back, nil
	case SchemeCoorDL:
		return cache.NewCoorDL(back, capBytes, svcCfg), back, nil
	case SchemeILFU:
		return cache.NewILFU(back, capBytes, svcCfg, sampling.DefaultIIS()), back, nil
	case SchemeIIS:
		return cache.NewILRU(back, capBytes, svcCfg, sampling.DefaultIIS()), back, nil
	case SchemeOracle:
		return cache.NewOracle(back, svcCfg, sampling.DefaultIIS()), back, nil
	case SchemeNoCache:
		return cache.NewNoCache(back), back, nil
	case SchemeNoCacheCIS:
		return cache.NewNoCacheCIS(back, sampling.DefaultCIS()), back, nil
	case SchemeHC:
		cfg := icache.DefaultConfig(capBytes)
		cfg.EnableLCache = false
		srv, err := icache.NewServer(back, cfg, scaledIIS(capFrac, 1.0), seed)
		if err != nil {
			return nil, nil, err
		}
		return srv, back, nil
	case SchemeICache:
		cfg := icache.DefaultConfig(capBytes)
		srv, err := icache.NewServer(back, cfg, scaledIIS(capFrac, cfg.HShare), seed)
		if err != nil {
			return nil, nil, err
		}
		return srv, back, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown scheme %q", scheme)
	}
}

// scaledIIS sizes the H-list to the H-cache, as §III-A does ("the cache
// holds 20% samples" → an H-list of the same cardinality): with a larger
// cache the H-region covers more samples, so the sampler treats more of the
// dataset as H. Capped so H-selection cannot exceed the per-epoch target.
func scaledIIS(capFrac, hShare float64) sampling.IISConfig {
	iis := sampling.DefaultIIS()
	hFrac := capFrac * hShare
	if max := iis.TargetFraction / iis.HSelectProb * 0.98; hFrac > max {
		hFrac = max
	}
	if hFrac > iis.HFraction {
		iis.HFraction = hFrac
	}
	return iis
}

// runOne trains one model under one scheme and returns the full run stats.
func runOne(scheme Scheme, model train.ModelProfile, spec dataset.Spec, storageCfg storage.Config,
	capFrac float64, epochs int, mutate func(*train.Config), opts Options) (metrics.RunStats, error) {
	svc, _, err := newService(scheme, spec, storageCfg, capFrac, 42+opts.Seed)
	if err != nil {
		return metrics.RunStats{}, err
	}
	cfg := train.DefaultConfig(model, spec)
	cfg.Epochs = epochs
	cfg.Seed = 1 + opts.Seed
	if mutate != nil {
		mutate(&cfg)
	}
	job, err := train.NewJob(cfg, svc)
	if err != nil {
		return metrics.RunStats{}, err
	}
	return job.Run(), nil
}

// steady trims warmup epochs so averages reflect warmed-up training.
func steady(rs metrics.RunStats, warmup int) metrics.RunStats {
	if len(rs.Epochs) > warmup {
		out := rs
		out.Epochs = rs.Epochs[warmup:]
		return out
	}
	return rs
}

// fmtDur renders a virtual duration with millisecond precision.
func fmtDur(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// fmtX renders a speedup factor.
func fmtX(f float64) string { return fmt.Sprintf("%.2fx", f) }

// fmtPct renders a ratio as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// fmtAcc renders an accuracy in percent.
func fmtAcc(f float64) string { return fmt.Sprintf("%.2f", f) }

// avgCompute averages the per-epoch GPU compute time of a run.
func avgCompute(rs metrics.RunStats) time.Duration {
	if len(rs.Epochs) == 0 {
		return 0
	}
	var total time.Duration
	for _, e := range rs.Epochs {
		total += e.Compute
	}
	return total / time.Duration(len(rs.Epochs))
}

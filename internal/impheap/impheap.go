// Package impheap implements the H-heap of the paper's §III-B: a small-top
// (min) heap keyed by sample importance value, with O(log n) insert, remove,
// and update by sample ID, plus the shadow-heap protocol used to absorb
// mutations while the main heap is frozen after an importance update.
//
// The heap object the paper describes is a pair <importance value, reference
// to the cached item>; here the reference is the sample ID, which is how the
// H-cache key-value store is addressed.
package impheap

import (
	"fmt"

	"icache/internal/dataset"
)

// Entry is one heap element: a sample and its importance value.
type Entry struct {
	ID dataset.SampleID
	IV float64
}

// Heap is a min-heap of entries ordered by importance value with an ID
// index. Ties on IV break by ascending ID so iteration order is
// deterministic. The zero value is not usable; call New.
type Heap struct {
	es  []Entry
	pos map[dataset.SampleID]int
}

// New returns an empty heap.
func New() *Heap {
	return &Heap{pos: make(map[dataset.SampleID]int)}
}

// NewFromEntries heapifies the given entries in O(n). Duplicate IDs are an
// error.
func NewFromEntries(entries []Entry) (*Heap, error) {
	h := &Heap{es: append([]Entry(nil), entries...), pos: make(map[dataset.SampleID]int, len(entries))}
	for i, e := range h.es {
		if _, dup := h.pos[e.ID]; dup {
			return nil, fmt.Errorf("impheap: duplicate ID %d", e.ID)
		}
		h.pos[e.ID] = i
	}
	for i := len(h.es)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h, nil
}

// Len reports the number of entries.
func (h *Heap) Len() int { return len(h.es) }

// less orders by IV then ID for determinism.
func (h *Heap) less(i, j int) bool {
	if h.es[i].IV != h.es[j].IV {
		return h.es[i].IV < h.es[j].IV
	}
	return h.es[i].ID < h.es[j].ID
}

func (h *Heap) swap(i, j int) {
	h.es[i], h.es[j] = h.es[j], h.es[i]
	h.pos[h.es[i].ID] = i
	h.pos[h.es[j].ID] = j
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// Insert adds a new entry. Inserting an ID already present is an error;
// callers that want upsert semantics use Update first.
func (h *Heap) Insert(id dataset.SampleID, iv float64) error {
	if _, ok := h.pos[id]; ok {
		return fmt.Errorf("impheap: ID %d already present", id)
	}
	h.es = append(h.es, Entry{ID: id, IV: iv})
	h.pos[id] = len(h.es) - 1
	h.up(len(h.es) - 1)
	return nil
}

// Min returns the top-node — the entry with the smallest importance value —
// without removing it.
func (h *Heap) Min() (Entry, bool) {
	if len(h.es) == 0 {
		return Entry{}, false
	}
	return h.es[0], true
}

// PopMin removes and returns the top-node.
func (h *Heap) PopMin() (Entry, bool) {
	if len(h.es) == 0 {
		return Entry{}, false
	}
	top := h.es[0]
	h.removeAt(0)
	return top, true
}

// Remove deletes the entry for id, reporting whether it was present.
func (h *Heap) Remove(id dataset.SampleID) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

func (h *Heap) removeAt(i int) {
	last := len(h.es) - 1
	removed := h.es[i].ID
	if i != last {
		h.swap(i, last)
	}
	h.es = h.es[:last]
	delete(h.pos, removed) // after the swap, which re-indexes both slots
	if i < len(h.es) {
		h.down(i)
		h.up(i)
	}
}

// Update changes the importance value of id, reporting whether it was
// present.
func (h *Heap) Update(id dataset.SampleID, iv float64) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	h.es[i].IV = iv
	h.down(i)
	h.up(i)
	return true
}

// Value returns the importance value stored for id.
func (h *Heap) Value(id dataset.SampleID) (float64, bool) {
	i, ok := h.pos[id]
	if !ok {
		return 0, false
	}
	return h.es[i].IV, true
}

// Contains reports whether id is in the heap.
func (h *Heap) Contains(id dataset.SampleID) bool {
	_, ok := h.pos[id]
	return ok
}

// Entries returns a copy of all entries in heap-internal (not sorted) order.
func (h *Heap) Entries() []Entry {
	return append([]Entry(nil), h.es...)
}

// Shadowed wraps a main heap with the paper's shadow-heap protocol.
//
// In normal operation every mutation goes straight to the main heap. After
// an importance-value refresh the cache manager calls Freeze: the main heap
// becomes read-only except for evictions (PopMin/Remove), and insertions and
// value updates are recorded in a shadow heap instead. Thaw merges the
// shadow into the main heap in one O(n) rebuild. This keeps eviction
// decisions O(log n) on a stable ordering while an epoch's worth of changes
// accumulates, instead of rebuilding the heap on every value change.
type Shadowed struct {
	main    *Heap
	shadow  *Heap
	pending map[dataset.SampleID]float64 // value updates recorded while frozen
	frozen  bool
}

// NewShadowed returns an empty shadowed heap in normal (unfrozen) mode.
func NewShadowed() *Shadowed {
	return &Shadowed{main: New(), shadow: New(), pending: make(map[dataset.SampleID]float64)}
}

// Frozen reports whether the shadow protocol is active.
func (s *Shadowed) Frozen() bool { return s.frozen }

// Len reports the total number of live entries (main + shadow).
func (s *Shadowed) Len() int { return s.main.Len() + s.shadow.Len() }

// Freeze switches mutations to the shadow heap. Freezing twice is an error.
func (s *Shadowed) Freeze() error {
	if s.frozen {
		return fmt.Errorf("impheap: already frozen")
	}
	s.frozen = true
	return nil
}

// Thaw merges the shadow heap and the pending value updates into the main
// heap and resumes normal operation. Thawing an unfrozen heap is an error.
func (s *Shadowed) Thaw() error {
	if !s.frozen {
		return fmt.Errorf("impheap: not frozen")
	}
	merged := s.main.Entries()
	for i := range merged {
		if iv, ok := s.pending[merged[i].ID]; ok {
			merged[i].IV = iv
		}
	}
	merged = append(merged, s.shadow.Entries()...)
	rebuilt, err := NewFromEntries(merged)
	if err != nil {
		return fmt.Errorf("impheap: thaw merge: %w", err)
	}
	s.main = rebuilt
	s.shadow = New()
	s.pending = make(map[dataset.SampleID]float64)
	s.frozen = false
	return nil
}

// Insert adds an entry, to the main heap normally or to the shadow heap
// while frozen. The ID must not already be present in either heap.
func (s *Shadowed) Insert(id dataset.SampleID, iv float64) error {
	if s.main.Contains(id) || s.shadow.Contains(id) {
		return fmt.Errorf("impheap: ID %d already present", id)
	}
	if s.frozen {
		return s.shadow.Insert(id, iv)
	}
	return s.main.Insert(id, iv)
}

// Update records a new importance value for id. While frozen the main
// heap's ordering is left untouched and the update lands in the pending set
// (or directly in the shadow heap if the entry lives there).
func (s *Shadowed) Update(id dataset.SampleID, iv float64) bool {
	if s.shadow.Contains(id) {
		return s.shadow.Update(id, iv)
	}
	if !s.main.Contains(id) {
		return false
	}
	if s.frozen {
		s.pending[id] = iv
		return true
	}
	return s.main.Update(id, iv)
}

// Min returns the eviction candidate. While frozen this is the main heap's
// top-node — the paper keeps the frozen heap authoritative for eviction —
// falling back to the shadow only when the main heap is empty.
func (s *Shadowed) Min() (Entry, bool) {
	if e, ok := s.main.Min(); ok {
		return e, true
	}
	return s.shadow.Min()
}

// PopMin evicts the candidate Min would return.
func (s *Shadowed) PopMin() (Entry, bool) {
	if e, ok := s.main.PopMin(); ok {
		delete(s.pending, e.ID)
		return e, true
	}
	return s.shadow.PopMin()
}

// Remove deletes id from whichever heap holds it (evictions are always
// allowed, frozen or not).
func (s *Shadowed) Remove(id dataset.SampleID) bool {
	if s.main.Remove(id) {
		delete(s.pending, id)
		return true
	}
	return s.shadow.Remove(id)
}

// Contains reports whether id is live in either heap.
func (s *Shadowed) Contains(id dataset.SampleID) bool {
	return s.main.Contains(id) || s.shadow.Contains(id)
}

// Value returns the most recent importance value known for id, preferring
// pending updates over the frozen main heap's stale values.
func (s *Shadowed) Value(id dataset.SampleID) (float64, bool) {
	if iv, ok := s.shadow.Value(id); ok {
		return iv, true
	}
	if iv, ok := s.pending[id]; ok {
		return iv, true
	}
	return s.main.Value(id)
}

// Entries returns every live entry with its most recent value.
func (s *Shadowed) Entries() []Entry {
	out := s.main.Entries()
	for i := range out {
		if iv, ok := s.pending[out[i].ID]; ok {
			out[i].IV = iv
		}
	}
	return append(out, s.shadow.Entries()...)
}

package impheap

import (
	"math/rand"
	"testing"

	"icache/internal/dataset"
)

// BenchmarkHeapInsertPop measures the core H-heap operations at H-cache
// scale (the paper's ImageNet H-cache holds ~256k entries).
func BenchmarkHeapInsertPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := New()
		for k := 0; k < 10000; k++ {
			_ = h.Insert(dataset.SampleID(k), rng.Float64())
		}
		for k := 0; k < 10000; k++ {
			h.PopMin()
		}
	}
}

// BenchmarkHeapUpdate measures in-place importance updates.
func BenchmarkHeapUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := New()
	for k := 0; k < 10000; k++ {
		_ = h.Insert(dataset.SampleID(k), rng.Float64())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Update(dataset.SampleID(i%10000), rng.Float64())
	}
}

// BenchmarkShadowedRefresh is the ablation bench for the shadow-heap design
// (§III-B): freeze → a churn of updates/inserts → thaw-merge, versus paying
// an eager re-sort on every single update. The shadow protocol amortizes an
// epoch's worth of changes into one O(n) rebuild.
func BenchmarkShadowedRefresh(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewShadowed()
		for k := 0; k < 10000; k++ {
			_ = s.Insert(dataset.SampleID(k), rng.Float64())
		}
		_ = s.Freeze()
		for k := 0; k < 5000; k++ {
			s.Update(dataset.SampleID(k*2), rng.Float64())
		}
		for k := 10000; k < 11000; k++ {
			_ = s.Insert(dataset.SampleID(k), rng.Float64())
		}
		_ = s.Thaw()
	}
}

// BenchmarkEagerUpdates is the baseline the shadow heap is compared
// against: every update immediately re-heapifies.
func BenchmarkEagerUpdates(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := New()
		for k := 0; k < 10000; k++ {
			_ = h.Insert(dataset.SampleID(k), rng.Float64())
		}
		for k := 0; k < 5000; k++ {
			h.Update(dataset.SampleID(k*2), rng.Float64())
		}
		for k := 10000; k < 11000; k++ {
			_ = h.Insert(dataset.SampleID(k), rng.Float64())
		}
	}
}

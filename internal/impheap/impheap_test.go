package impheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"icache/internal/dataset"
)

func TestInsertAndMin(t *testing.T) {
	h := New()
	for _, e := range []Entry{{3, 0.5}, {1, 0.2}, {2, 0.9}} {
		if err := h.Insert(e.ID, e.IV); err != nil {
			t.Fatal(err)
		}
	}
	min, ok := h.Min()
	if !ok || min.ID != 1 || min.IV != 0.2 {
		t.Fatalf("Min = %+v, %v; want {1 0.2}", min, ok)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	h := New()
	if err := h.Insert(1, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(1, 0.2); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
}

func TestPopMinDrainsSorted(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(1))
	const n = 500
	for i := 0; i < n; i++ {
		if err := h.Insert(dataset.SampleID(i), rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	var prev float64 = -1
	for i := 0; i < n; i++ {
		e, ok := h.PopMin()
		if !ok {
			t.Fatalf("heap empty after %d pops, want %d", i, n)
		}
		if e.IV < prev {
			t.Fatalf("pop %d: IV %g < previous %g", i, e.IV, prev)
		}
		prev = e.IV
	}
	if _, ok := h.PopMin(); ok {
		t.Fatal("pop from empty heap succeeded")
	}
}

func TestRemoveAndUpdate(t *testing.T) {
	h := New()
	for i := 0; i < 10; i++ {
		_ = h.Insert(dataset.SampleID(i), float64(i))
	}
	if !h.Remove(0) {
		t.Fatal("Remove(0) = false")
	}
	if h.Remove(0) {
		t.Fatal("second Remove(0) = true")
	}
	min, _ := h.Min()
	if min.ID != 1 {
		t.Fatalf("after removing 0, Min.ID = %d, want 1", min.ID)
	}
	if !h.Update(9, -5) {
		t.Fatal("Update(9) = false")
	}
	min, _ = h.Min()
	if min.ID != 9 || min.IV != -5 {
		t.Fatalf("after Update, Min = %+v, want {9 -5}", min)
	}
	if h.Update(1234, 0) {
		t.Fatal("Update of absent ID = true")
	}
}

func TestValueAndContains(t *testing.T) {
	h := New()
	_ = h.Insert(5, 0.7)
	if iv, ok := h.Value(5); !ok || iv != 0.7 {
		t.Fatalf("Value(5) = %g,%v", iv, ok)
	}
	if _, ok := h.Value(6); ok {
		t.Fatal("Value of absent ID found")
	}
	if !h.Contains(5) || h.Contains(6) {
		t.Fatal("Contains wrong")
	}
}

func TestNewFromEntriesHeapifies(t *testing.T) {
	es := []Entry{{1, 5}, {2, 1}, {3, 3}, {4, 0.5}}
	h, err := NewFromEntries(es)
	if err != nil {
		t.Fatal(err)
	}
	min, _ := h.Min()
	if min.ID != 4 {
		t.Fatalf("Min.ID = %d, want 4", min.ID)
	}
	if _, err := NewFromEntries([]Entry{{1, 1}, {1, 2}}); err == nil {
		t.Fatal("duplicate entries accepted")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	h := New()
	_ = h.Insert(9, 0.5)
	_ = h.Insert(2, 0.5)
	_ = h.Insert(7, 0.5)
	min, _ := h.PopMin()
	if min.ID != 2 {
		t.Fatalf("tie broken to ID %d, want lowest ID 2", min.ID)
	}
}

// Property: after any sequence of inserts/removes/updates the heap pops in
// nondecreasing order and matches a reference map.
func TestHeapModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New()
		ref := map[dataset.SampleID]float64{}
		for op := 0; op < 500; op++ {
			id := dataset.SampleID(rng.Intn(100))
			switch rng.Intn(3) {
			case 0:
				iv := rng.Float64()
				if _, exists := ref[id]; exists {
					if err := h.Insert(id, iv); err == nil {
						return false // must reject duplicates
					}
				} else if err := h.Insert(id, iv); err != nil {
					return false
				} else {
					ref[id] = iv
				}
			case 1:
				_, exists := ref[id]
				if h.Remove(id) != exists {
					return false
				}
				delete(ref, id)
			case 2:
				iv := rng.Float64()
				_, exists := ref[id]
				if h.Update(id, iv) != exists {
					return false
				}
				if exists {
					ref[id] = iv
				}
			}
		}
		if h.Len() != len(ref) {
			return false
		}
		var want []float64
		for _, iv := range ref {
			want = append(want, iv)
		}
		sort.Float64s(want)
		for _, w := range want {
			e, ok := h.PopMin()
			if !ok || e.IV != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestShadowedNormalModePassesThrough(t *testing.T) {
	s := NewShadowed()
	if err := s.Insert(1, 0.5); err != nil {
		t.Fatal(err)
	}
	if !s.Update(1, 0.1) {
		t.Fatal("Update failed")
	}
	min, _ := s.Min()
	if min.IV != 0.1 {
		t.Fatalf("Min.IV = %g, want updated 0.1", min.IV)
	}
}

func TestShadowedFreezeKeepsMainOrderingStale(t *testing.T) {
	s := NewShadowed()
	_ = s.Insert(1, 0.5)
	_ = s.Insert(2, 0.9)
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	// Update makes 2 the smallest, but the frozen main heap must still
	// surface 1 as the eviction candidate (the paper's read-only rule).
	if !s.Update(2, 0.01) {
		t.Fatal("Update while frozen failed")
	}
	min, _ := s.Min()
	if min.ID != 1 {
		t.Fatalf("frozen Min.ID = %d, want stale candidate 1", min.ID)
	}
	// Value must still report the fresh number.
	if iv, _ := s.Value(2); iv != 0.01 {
		t.Fatalf("Value(2) = %g, want pending 0.01", iv)
	}
	if err := s.Thaw(); err != nil {
		t.Fatal(err)
	}
	min, _ = s.Min()
	if min.ID != 2 || min.IV != 0.01 {
		t.Fatalf("thawed Min = %+v, want {2 0.01}", min)
	}
}

func TestShadowedFrozenInsertGoesToShadow(t *testing.T) {
	s := NewShadowed()
	_ = s.Insert(1, 0.5)
	_ = s.Freeze()
	if err := s.Insert(2, 0.1); err != nil {
		t.Fatal(err)
	}
	// Despite 2 having the smallest IV, the frozen main heap drives Min.
	min, _ := s.Min()
	if min.ID != 1 {
		t.Fatalf("frozen Min.ID = %d, want 1", min.ID)
	}
	if !s.Contains(2) {
		t.Fatal("shadow entry invisible to Contains")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	_ = s.Thaw()
	min, _ = s.Min()
	if min.ID != 2 {
		t.Fatalf("thawed Min.ID = %d, want 2", min.ID)
	}
}

func TestShadowedEvictionAllowedWhileFrozen(t *testing.T) {
	s := NewShadowed()
	_ = s.Insert(1, 0.5)
	_ = s.Insert(2, 0.9)
	_ = s.Freeze()
	e, ok := s.PopMin()
	if !ok || e.ID != 1 {
		t.Fatalf("PopMin while frozen = %+v,%v; want {1 0.5}", e, ok)
	}
	if !s.Remove(2) {
		t.Fatal("Remove while frozen failed")
	}
	// Main empty: Min falls back to shadow.
	_ = s.Insert(3, 0.3)
	min, ok := s.Min()
	if !ok || min.ID != 3 {
		t.Fatalf("fallback Min = %+v,%v; want shadow entry 3", min, ok)
	}
}

func TestShadowedDoubleFreezeAndThawErrors(t *testing.T) {
	s := NewShadowed()
	if err := s.Thaw(); err == nil {
		t.Fatal("Thaw of unfrozen heap succeeded")
	}
	_ = s.Freeze()
	if err := s.Freeze(); err == nil {
		t.Fatal("double Freeze succeeded")
	}
	if !s.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
}

func TestShadowedDuplicateAcrossHeapsRejected(t *testing.T) {
	s := NewShadowed()
	_ = s.Insert(1, 0.5)
	_ = s.Freeze()
	if err := s.Insert(1, 0.9); err == nil {
		t.Fatal("insert of ID already in main accepted into shadow")
	}
	_ = s.Insert(2, 0.7)
	if err := s.Insert(2, 0.8); err == nil {
		t.Fatal("insert of ID already in shadow accepted")
	}
}

func TestShadowedPendingUpdateDroppedOnEvict(t *testing.T) {
	s := NewShadowed()
	_ = s.Insert(1, 0.5)
	_ = s.Freeze()
	_ = s.Update(1, 0.9)
	s.PopMin() // evicts 1; its pending update must not survive the thaw
	_ = s.Thaw()
	if s.Contains(1) {
		t.Fatal("evicted entry resurrected by Thaw")
	}
}

// Property: a shadowed heap after freeze → random ops → thaw holds exactly
// the same (id, iv) set as an eagerly-updated plain map.
func TestShadowedMergeEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewShadowed()
		ref := map[dataset.SampleID]float64{}
		for i := 0; i < 50; i++ {
			id := dataset.SampleID(i)
			iv := rng.Float64()
			if s.Insert(id, iv) == nil {
				ref[id] = iv
			}
		}
		if err := s.Freeze(); err != nil {
			return false
		}
		for op := 0; op < 300; op++ {
			id := dataset.SampleID(rng.Intn(120))
			switch rng.Intn(3) {
			case 0:
				iv := rng.Float64()
				if s.Insert(id, iv) == nil {
					if _, dup := ref[id]; dup {
						return false
					}
					ref[id] = iv
				}
			case 1:
				_, exists := ref[id]
				if s.Remove(id) != exists {
					return false
				}
				delete(ref, id)
			case 2:
				iv := rng.Float64()
				_, exists := ref[id]
				if s.Update(id, iv) != exists {
					return false
				}
				if exists {
					ref[id] = iv
				}
			}
		}
		if err := s.Thaw(); err != nil {
			return false
		}
		got := s.Entries()
		if len(got) != len(ref) {
			return false
		}
		for _, e := range got {
			if ref[e.ID] != e.IV {
				return false
			}
		}
		// And the post-thaw pop order must be globally sorted.
		prev := -1.0
		for range got {
			e, ok := s.PopMin()
			if !ok || e.IV < prev {
				return false
			}
			prev = e.IV
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package impheap_test

import (
	"fmt"

	"icache/internal/impheap"
)

// The H-heap's core loop: the least important cached sample is always the
// eviction candidate, and the shadow protocol defers reordering while the
// heap is frozen for an epoch.
func ExampleShadowed() {
	h := impheap.NewShadowed()
	_ = h.Insert(101, 0.9) // hard sample
	_ = h.Insert(102, 0.2) // easy sample
	_ = h.Insert(103, 0.5)

	min, _ := h.Min()
	fmt.Printf("eviction candidate: sample %d (iv %.1f)\n", min.ID, min.IV)

	// Freeze for the epoch; importance updates land in the shadow.
	_ = h.Freeze()
	h.Update(102, 0.95) // sample 102 became hard
	min, _ = h.Min()
	fmt.Printf("frozen candidate:   sample %d (stale ordering)\n", min.ID)

	// The epoch boundary merges the shadow.
	_ = h.Thaw()
	min, _ = h.Min()
	fmt.Printf("thawed candidate:   sample %d (iv %.1f)\n", min.ID, min.IV)
	// Output:
	// eviction candidate: sample 102 (iv 0.2)
	// frozen candidate:   sample 102 (stale ordering)
	// thawed candidate:   sample 103 (iv 0.5)
}

// Package singleflight provides duplicate call suppression for the cache
// miss path: when K goroutines concurrently need the same expensive fetch
// (a backend read or a remote peer read of one sample), exactly one
// executes it and the other K-1 wait for, and share, its result.
//
// This is the standard-library-only equivalent of
// golang.org/x/sync/singleflight, specialized to the needs of the serving
// path: int64-keyed (sample IDs), byte-slice results, and a shared-counter
// hook so coalesced calls are observable in metrics. Results are delivered
// to every waiter by reference — callers must treat the returned bytes as
// immutable.
package singleflight

import "sync"

// Call is one in-flight (or completed) fetch. Leaders obtained through
// Begin resolve it with Group.Finish; every other holder blocks in Wait
// until then.
type Call struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Wait blocks until the call's leader finishes it and returns the shared
// result. The returned bytes are shared by reference across all waiters
// and must be treated as immutable.
func (c *Call) Wait() ([]byte, error) {
	c.wg.Wait()
	return c.val, c.err
}

// Group coalesces concurrent calls with the same key. The zero value is
// ready to use.
type Group struct {
	mu sync.Mutex
	m  map[int64]*Call
}

// Do executes fn, making sure only one execution per key is in flight at a
// time. Concurrent duplicates wait for the original and receive the same
// result; shared reports whether the result came from another caller's
// execution (true for the waiters, false for the executor).
func (g *Group) Do(key int64, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	c, leader := g.Begin(key)
	if !leader {
		val, err = c.Wait()
		return val, err, true
	}
	val, err = fn()
	g.Finish(key, c, val, err)
	return val, err, false
}

// Begin joins or starts the in-flight call for key. leader == true means
// the caller now owns execution and MUST eventually call Finish exactly
// once (even on error paths — an unfinished call deadlocks every waiter);
// leader == false means another goroutine is executing and the caller
// should Wait on the returned call.
//
// Begin/Finish exists for batch orchestrators (the scatter-gather miss
// path): a caller can Begin many keys, resolve all the leader keys with
// one batched RPC, and Finish each, while per-key waiters are still
// satisfied exactly once.
func (g *Group) Begin(key int64) (c *Call, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[int64]*Call)
	}
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c = new(Call)
	c.wg.Add(1)
	g.m[key] = c
	return c, true
}

// Finish resolves a call started with Begin: it publishes the result to
// every waiter and retires the key so the next Begin starts fresh. Must be
// called exactly once per leader Begin, with the same key and call.
func (g *Group) Finish(key int64, c *Call, val []byte, err error) {
	c.val, c.err = val, err
	g.mu.Lock()
	if cur, ok := g.m[key]; ok && cur == c {
		delete(g.m, key)
	}
	g.mu.Unlock()
	c.wg.Done()
}

// Inflight reports the number of keys currently executing (diagnostics).
func (g *Group) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

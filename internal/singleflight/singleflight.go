// Package singleflight provides duplicate call suppression for the cache
// miss path: when K goroutines concurrently need the same expensive fetch
// (a backend read or a remote peer read of one sample), exactly one
// executes it and the other K-1 wait for, and share, its result.
//
// This is the standard-library-only equivalent of
// golang.org/x/sync/singleflight, specialized to the needs of the serving
// path: int64-keyed (sample IDs), byte-slice results, and a shared-counter
// hook so coalesced calls are observable in metrics. Results are delivered
// to every waiter by reference — callers must treat the returned bytes as
// immutable.
package singleflight

import "sync"

// call is one in-flight (or completed) fetch.
type call struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Group coalesces concurrent calls with the same key. The zero value is
// ready to use.
type Group struct {
	mu sync.Mutex
	m  map[int64]*call
}

// Do executes fn, making sure only one execution per key is in flight at a
// time. Concurrent duplicates wait for the original and receive the same
// result; shared reports whether the result came from another caller's
// execution (true for the waiters, false for the executor).
func (g *Group) Do(key int64, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[int64]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(call)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}

// Inflight reports the number of keys currently executing (diagnostics).
func (g *Group) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

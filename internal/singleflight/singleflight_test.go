package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoBasic(t *testing.T) {
	var g Group
	v, err, shared := g.Do(1, func() ([]byte, error) { return []byte("x"), nil })
	if err != nil || string(v) != "x" || shared {
		t.Fatalf("got %q, %v, shared=%v", v, err, shared)
	}
	if g.Inflight() != 0 {
		t.Fatalf("inflight after completion: %d", g.Inflight())
	}
}

func TestDoError(t *testing.T) {
	var g Group
	want := errors.New("boom")
	_, err, _ := g.Do(2, func() ([]byte, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestDoCoalescesConcurrentCalls(t *testing.T) {
	var g Group
	var execs int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	vals := make([][]byte, waiters)
	sharedCount := int64(0)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do(7, func() ([]byte, error) {
				atomic.AddInt64(&execs, 1)
				close(started)
				<-release
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				atomic.AddInt64(&sharedCount, 1)
			}
			vals[i] = v
		}(i)
	}
	<-started
	// Give the other goroutines a moment to pile onto the in-flight call.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := atomic.LoadInt64(&execs); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	// At least the late arrivals must have been marked shared (timing may
	// let a few run after completion and re-execute is impossible here
	// since release blocks until all are queued — all but one share).
	if got := atomic.LoadInt64(&sharedCount); got != waiters-1 {
		t.Fatalf("shared=%d, want %d", got, waiters-1)
	}
	for i, v := range vals {
		if string(v) != "payload" {
			t.Fatalf("waiter %d got %q", i, v)
		}
	}
}

func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group
	var execs int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err, _ := g.Do(int64(i), func() ([]byte, error) {
				atomic.AddInt64(&execs, 1)
				return nil, nil
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := atomic.LoadInt64(&execs); got != 8 {
		t.Fatalf("fn executed %d times, want 8", got)
	}
}

func TestSequentialCallsReExecute(t *testing.T) {
	var g Group
	var execs int64
	for i := 0; i < 3; i++ {
		g.Do(9, func() ([]byte, error) {
			atomic.AddInt64(&execs, 1)
			return nil, nil
		})
	}
	if execs != 3 {
		t.Fatalf("sequential calls coalesced: execs=%d", execs)
	}
}

// TestBeginFinishLeaderAndWaiters exercises the batch-orchestrator API
// directly: one Begin wins leadership, later Begins join as waiters, and
// one Finish releases everyone with the shared result.
func TestBeginFinishLeaderAndWaiters(t *testing.T) {
	var g Group
	c, leader := g.Begin(3)
	if !leader {
		t.Fatal("first Begin not leader")
	}
	c2, leader2 := g.Begin(3)
	if leader2 {
		t.Fatal("second Begin also leader")
	}
	if c2 != c {
		t.Fatal("waiter joined a different call")
	}

	const waiters = 8
	var wg, begun sync.WaitGroup
	begun.Add(waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc, lead := g.Begin(3)
			begun.Done()
			if lead {
				t.Error("concurrent Begin stole leadership")
				return
			}
			v, err := wc.Wait()
			if err != nil || string(v) != "batch" {
				t.Errorf("waiter got %q, %v", v, err)
			}
		}()
	}
	begun.Wait() // every waiter joined before the leader resolves
	g.Finish(3, c, []byte("batch"), nil)
	if v, err := c2.Wait(); err != nil || string(v) != "batch" {
		t.Fatalf("pre-finish waiter got %q, %v", v, err)
	}
	wg.Wait()
	if g.Inflight() != 0 {
		t.Fatalf("inflight after Finish: %d", g.Inflight())
	}
}

// TestBeginFinishErrorPropagates delivers a leader's error to every waiter.
func TestBeginFinishErrorPropagates(t *testing.T) {
	var g Group
	c, leader := g.Begin(4)
	if !leader {
		t.Fatal("not leader")
	}
	w, _ := g.Begin(4)
	want := errors.New("fetch failed")
	g.Finish(4, c, nil, want)
	if _, err := w.Wait(); !errors.Is(err, want) {
		t.Fatalf("waiter error: %v", err)
	}
}

// TestFinishRetiresKey pins that a finished key starts fresh: the next
// Begin must win leadership, not join the retired call.
func TestFinishRetiresKey(t *testing.T) {
	var g Group
	c, _ := g.Begin(5)
	g.Finish(5, c, []byte("old"), nil)
	c2, leader := g.Begin(5)
	if !leader {
		t.Fatal("Begin after Finish did not win leadership")
	}
	if c2 == c {
		t.Fatal("retired call reused")
	}
	g.Finish(5, c2, []byte("new"), nil)
	if v, _ := c2.Wait(); string(v) != "new" {
		t.Fatalf("got %q", v)
	}
}

// TestBeginManyKeysBatchResolution models the scatter-gather miss path: a
// batch orchestrator Begins many keys, resolves them out of order in one
// sweep, and every per-key waiter sees exactly its own result.
func TestBeginManyKeysBatchResolution(t *testing.T) {
	var g Group
	const n = 32
	calls := make([]*Call, n)
	for i := 0; i < n; i++ {
		c, leader := g.Begin(int64(i))
		if !leader {
			t.Fatalf("key %d not led", i)
		}
		calls[i] = c
	}
	var wg, begun sync.WaitGroup
	begun.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, leader := g.Begin(int64(i))
			begun.Done()
			if leader {
				t.Errorf("key %d: waiter stole leadership", i)
				return
			}
			v, err := c.Wait()
			if err != nil || len(v) != 1 || v[0] != byte(i) {
				t.Errorf("key %d got %v, %v", i, v, err)
			}
		}(i)
	}
	begun.Wait()                  // every waiter joined before resolution starts
	for i := n - 1; i >= 0; i-- { // resolve in reverse order
		g.Finish(int64(i), calls[i], []byte{byte(i)}, nil)
	}
	wg.Wait()
	if g.Inflight() != 0 {
		t.Fatalf("inflight after batch: %d", g.Inflight())
	}
}

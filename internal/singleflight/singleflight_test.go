package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoBasic(t *testing.T) {
	var g Group
	v, err, shared := g.Do(1, func() ([]byte, error) { return []byte("x"), nil })
	if err != nil || string(v) != "x" || shared {
		t.Fatalf("got %q, %v, shared=%v", v, err, shared)
	}
	if g.Inflight() != 0 {
		t.Fatalf("inflight after completion: %d", g.Inflight())
	}
}

func TestDoError(t *testing.T) {
	var g Group
	want := errors.New("boom")
	_, err, _ := g.Do(2, func() ([]byte, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestDoCoalescesConcurrentCalls(t *testing.T) {
	var g Group
	var execs int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	vals := make([][]byte, waiters)
	sharedCount := int64(0)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do(7, func() ([]byte, error) {
				atomic.AddInt64(&execs, 1)
				close(started)
				<-release
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				atomic.AddInt64(&sharedCount, 1)
			}
			vals[i] = v
		}(i)
	}
	<-started
	// Give the other goroutines a moment to pile onto the in-flight call.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := atomic.LoadInt64(&execs); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	// At least the late arrivals must have been marked shared (timing may
	// let a few run after completion and re-execute is impossible here
	// since release blocks until all are queued — all but one share).
	if got := atomic.LoadInt64(&sharedCount); got != waiters-1 {
		t.Fatalf("shared=%d, want %d", got, waiters-1)
	}
	for i, v := range vals {
		if string(v) != "payload" {
			t.Fatalf("waiter %d got %q", i, v)
		}
	}
}

func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group
	var execs int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err, _ := g.Do(int64(i), func() ([]byte, error) {
				atomic.AddInt64(&execs, 1)
				return nil, nil
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := atomic.LoadInt64(&execs); got != 8 {
		t.Fatalf("fn executed %d times, want 8", got)
	}
}

func TestSequentialCallsReExecute(t *testing.T) {
	var g Group
	var execs int64
	for i := 0; i < 3; i++ {
		g.Do(9, func() ([]byte, error) {
			atomic.AddInt64(&execs, 1)
			return nil, nil
		})
	}
	if execs != 3 {
		t.Fatalf("sequential calls coalesced: execs=%d", execs)
	}
}

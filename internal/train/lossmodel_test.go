package train

import (
	"testing"

	"icache/internal/dataset"
)

func lmSpec() dataset.Spec {
	return dataset.Spec{Name: "lm", NumSamples: 1000, MeanSampleBytes: 100, Seed: 5}
}

func TestNewLossModelValidates(t *testing.T) {
	if _, err := NewLossModel(dataset.Spec{}, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestLossDecaysWithTraining(t *testing.T) {
	m, err := NewLossModel(lmSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	id := dataset.SampleID(3)
	first := m.Train(id)
	for i := 0; i < 30; i++ {
		m.Train(id)
	}
	last := m.Peek(id)
	if last >= first {
		t.Fatalf("loss did not decay: first=%g last=%g", first, last)
	}
	if m.TrainCount(id) != 31 {
		t.Fatalf("TrainCount = %d, want 31", m.TrainCount(id))
	}
}

func TestHardSamplesKeepHigherLoss(t *testing.T) {
	spec := lmSpec()
	m, _ := NewLossModel(spec, 0)
	// Find a clearly hard and a clearly easy sample.
	var hard, easy dataset.SampleID = -1, -1
	for id := 0; id < spec.NumSamples; id++ {
		d := spec.Difficulty(dataset.SampleID(id))
		if d > 0.85 && hard < 0 {
			hard = dataset.SampleID(id)
		}
		if d < 0.1 && easy < 0 {
			easy = dataset.SampleID(id)
		}
	}
	if hard < 0 || easy < 0 {
		t.Fatal("difficulty distribution missing extremes")
	}
	for i := 0; i < 40; i++ {
		m.Train(hard)
		m.Train(easy)
	}
	if m.Peek(hard) <= 2*m.Peek(easy) {
		t.Fatalf("hard sample loss %g not clearly above easy %g after training", m.Peek(hard), m.Peek(easy))
	}
}

func TestLossVariesAcrossEpochs(t *testing.T) {
	// Fig. 3's premise: the same sample's importance value changes across
	// epochs even at a fixed training count.
	m, _ := NewLossModel(lmSpec(), 0)
	id := dataset.SampleID(7)
	m.BeginEpoch(0)
	l0 := m.Peek(id)
	varied := false
	for e := 1; e < 10; e++ {
		m.BeginEpoch(e)
		if m.Peek(id) != l0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("loss constant across epochs — no importance drift")
	}
}

func TestLossDeterministic(t *testing.T) {
	a, _ := NewLossModel(lmSpec(), 0)
	b, _ := NewLossModel(lmSpec(), 0)
	for e := 0; e < 3; e++ {
		a.BeginEpoch(e)
		b.BeginEpoch(e)
		for id := 0; id < 100; id++ {
			if a.Train(dataset.SampleID(id)) != b.Train(dataset.SampleID(id)) {
				t.Fatalf("loss model nondeterministic at epoch %d id %d", e, id)
			}
		}
	}
}

func TestLossAlwaysPositive(t *testing.T) {
	m, _ := NewLossModel(lmSpec(), 0)
	for e := 0; e < 5; e++ {
		m.BeginEpoch(e)
		for id := 0; id < lmSpec().NumSamples; id++ {
			if l := m.Train(dataset.SampleID(id)); l <= 0 {
				t.Fatalf("loss %g <= 0 for id %d epoch %d", l, id, e)
			}
		}
	}
}

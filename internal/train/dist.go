package train

import (
	"fmt"
	"math/rand"
	"time"

	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
)

// DistService is the data-service contract for multi-node data-parallel
// training (§III-E / §V-G): one shared schedule per epoch, fetched shard by
// shard on each node. icache.Cluster and the distributed baselines in
// internal/cache implement it.
type DistService interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Nodes reports the cluster size.
	Nodes() int
	// BeginEpoch returns the epoch's global schedule.
	BeginEpoch(at simclock.Time, epoch int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule
	// FetchBatchOn simulates node's worker fetching ids from virtual time
	// at.
	FetchBatchOn(node int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID)
	// Stats returns cluster-wide cache counters.
	Stats() metrics.CacheStats
}

// DistJob simulates synchronous data-parallel training across nodes: in
// every iteration each node fetches and computes its own mini-batch, and an
// all-reduce barrier synchronizes gradient updates, so the iteration
// completes when the slowest node is done. A node starved by its shard's
// I/O therefore stalls the whole job — which is why the distributed cache
// matters.
type DistJob struct {
	cfg   Config
	nodes int
	svc   DistService

	tracker *sampling.Tracker
	loss    *LossModel
	acc     *accuracyModel
	rng     *rand.Rand

	run metrics.RunStats
}

// NewDistJob builds a distributed job. cfg.GPUs is interpreted as GPUs per
// node (the paper's cloud experiment uses one per node).
func NewDistJob(cfg Config, svc DistService) (*DistJob, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if svc.Nodes() <= 0 {
		return nil, fmt.Errorf("train: dist service reports %d nodes", svc.Nodes())
	}
	tr, err := sampling.NewTracker(cfg.Dataset.NumSamples, cfg.TrackerInit, cfg.TrackerDecay)
	if err != nil {
		return nil, err
	}
	lm, err := NewLossModel(cfg.Dataset, modelSalt(cfg.Model.Name))
	if err != nil {
		return nil, err
	}
	return &DistJob{
		cfg:     cfg,
		nodes:   svc.Nodes(),
		svc:     svc,
		tracker: tr,
		loss:    lm,
		acc:     newAccuracyModel(cfg.Model, cfg.Dataset, uint64(cfg.Seed)*0x51D7+3),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		run:     metrics.RunStats{Scheme: svc.Name()},
	}, nil
}

// Run simulates all configured epochs and returns per-epoch statistics.
func (d *DistJob) Run() metrics.RunStats {
	var now simclock.Time
	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		now = d.runEpoch(epoch, now)
	}
	return d.run
}

func (d *DistJob) runEpoch(epoch int, t0 simclock.Time) simclock.Time {
	d.loss.BeginEpoch(epoch)
	sched := d.svc.BeginEpoch(t0, epoch, d.tracker, d.rng)
	batches := sched.Batches(d.cfg.BatchSize)
	flags := make([][]bool, 0, len(batches))
	for i := 0; i < len(sched.Fetch); i += d.cfg.BatchSize {
		end := i + d.cfg.BatchSize
		if end > len(sched.Fetch) {
			end = len(sched.Fetch)
		}
		flags = append(flags, sched.Train[i:end])
	}

	iters := (len(batches) + d.nodes - 1) / d.nodes
	iterDone := make([]simclock.Time, iters)
	iterPtr := 0
	gpuFree := t0
	statsBefore := d.svc.Stats()

	var stall, compute, fetchBusy time.Duration
	fetched, trained := 0, 0
	distinct := make(map[dataset.SampleID]struct{}, len(sched.Fetch))
	subs := 0

	depth := d.cfg.Workers * d.cfg.PrefetchFactor // in per-node batch ordinals
	engine := newFetchEngine(batches, d.nodes, d.cfg.Workers, t0,
		d.svc.FetchBatchOn,
		func(k int) (simclock.Time, bool) {
			ord := k / d.nodes
			if ord < depth {
				return t0, true
			}
			if ord-depth < iterPtr {
				return iterDone[ord-depth], true
			}
			return 0, false
		},
		d.cfg.PreprocessPerSample)

	// consumeIteration performs the lockstep step once every shard of
	// iteration iterPtr is ready.
	consumeIteration := func() bool {
		if iterPtr >= iters {
			return false
		}
		first := iterPtr * d.nodes
		last := first + d.nodes
		if last > len(batches) {
			last = len(batches)
		}
		var maxReady simclock.Time
		var maxCompute time.Duration
		for k := first; k < last; k++ {
			r, ok := engine.batchReady(k)
			if !ok {
				return false
			}
			if r > maxReady {
				maxReady = r
			}
			nTrain := 0
			for _, f := range flags[k] {
				if f {
					nTrain++
				}
			}
			var c time.Duration
			if nTrain > 0 {
				c = d.cfg.Model.PerSampleGPU*time.Duration(nTrain)/time.Duration(d.cfg.GPUs) + d.cfg.Model.AllReduce(d.cfg.GPUs)
			}
			if c > maxCompute {
				maxCompute = c
			}
		}
		computeStart := gpuFree
		if maxReady > computeStart {
			stall += maxReady - computeStart
			computeStart = maxReady
		}
		gpuFree = computeStart + maxCompute + d.cfg.Model.AllReduce(d.nodes)
		iterDone[iterPtr] = gpuFree
		compute += maxCompute

		for k := first; k < last; k++ {
			served := engine.servedIDs(k)
			batch := batches[k]
			for i := range batch {
				if served[i] != batch[i] {
					subs++
				}
			}
			fetched += len(batch)
			for i, id := range served {
				if flags[k][i] {
					l := d.loss.Train(id)
					d.tracker.Observe(id, l)
					distinct[id] = struct{}{}
					trained++
				}
			}
		}
		iterPtr++
		return true
	}

	for iterPtr < iters {
		if w, _, ok := engine.nextEvent(); ok {
			_, completed, busy := engine.stepWorker(w)
			fetchBusy += busy
			if completed {
				for consumeIteration() {
				}
			}
			continue
		}
		if !consumeIteration() {
			panic("train: distributed pipeline deadlock")
		}
	}

	trainedFrac := float64(len(distinct)) / float64(d.cfg.Dataset.NumSamples)
	skippedImp := skippedImportanceMean(d.tracker, sched.Fetch)
	var subFrac float64
	if trained > 0 {
		subFrac = float64(subs) / float64(trained)
	}
	src := SubSourceHCache
	if s, ok := d.svc.(SubstitutionSourcer); ok {
		src = ParseSubSource(s.SubstitutionSource())
	}
	var lcFrac, hcFrac float64
	switch src {
	case SubSourceLCache:
		lcFrac = subFrac
	case SubSourceHCache:
		hcFrac = subFrac
	}
	d.acc.observeEpoch(epochDistortion(d.cfg.Model.AccuracySensitivity, trainedFrac, skippedImp, lcFrac, hcFrac))
	top1, top5 := d.acc.accuracy()

	after := d.svc.Stats()
	d.run.Epochs = append(d.run.Epochs, metrics.EpochStats{
		Epoch:          epoch,
		Duration:       gpuFree - t0,
		IOStall:        stall,
		Compute:        compute,
		FetchBusy:      fetchBusy,
		SamplesFetched: fetched,
		SamplesTrained: trained,
		Cache: metrics.CacheStats{
			Hits:          after.Hits - statsBefore.Hits,
			Misses:        after.Misses - statsBefore.Misses,
			Substitutions: after.Substitutions - statsBefore.Substitutions,
			Degraded:      after.Degraded - statsBefore.Degraded,
			Inserts:       after.Inserts - statsBefore.Inserts,
			Evictions:     after.Evictions - statsBefore.Evictions,
			Rejections:    after.Rejections - statsBefore.Rejections,
		},
		Top1: top1,
		Top5: top5,
	})
	return gpuFree
}

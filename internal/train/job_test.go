package train

import (
	"testing"
	"time"

	"icache/internal/cache"
	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/storage"
)

func smallSpec() dataset.Spec {
	return dataset.Spec{Name: "small", NumSamples: 4000, MeanSampleBytes: 2000, Seed: 2}
}

func smallConfig(model ModelProfile, epochs int) Config {
	cfg := DefaultConfig(model, smallSpec())
	cfg.Epochs = epochs
	cfg.BatchSize = 128
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig(ShuffleNet, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"batch":    func(c *Config) { c.BatchSize = 0 },
		"workers":  func(c *Config) { c.Workers = 0 },
		"gpus":     func(c *Config) { c.GPUs = 0 },
		"epochs":   func(c *Config) { c.Epochs = 0 },
		"prefetch": func(c *Config) { c.PrefetchFactor = 0 },
		"prep":     func(c *Config) { c.PreprocessPerSample = -1 },
	} {
		c := smallConfig(ShuffleNet, 1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: bad config validated", name)
		}
	}
}

func realService(t *testing.T, spec dataset.Spec) DataService {
	t.Helper()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	return cache.NewNoCache(back)
}

func TestJobRunsAllEpochs(t *testing.T) {
	spec := smallSpec()
	cfg := smallConfig(ShuffleNet, 3)
	job, err := NewJob(cfg, realService(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	rs := job.Run()
	if len(rs.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(rs.Epochs))
	}
	if !job.Done() {
		t.Fatal("job not done after Run")
	}
	for i, e := range rs.Epochs {
		if e.Duration <= 0 {
			t.Fatalf("epoch %d duration %v", i, e.Duration)
		}
		if e.SamplesFetched != spec.NumSamples {
			t.Fatalf("epoch %d fetched %d, want %d (uniform)", i, e.SamplesFetched, spec.NumSamples)
		}
		if e.SamplesTrained != spec.NumSamples {
			t.Fatalf("epoch %d trained %d", i, e.SamplesTrained)
		}
	}
	// Time must advance monotonically across epochs.
	if job.Now() <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestJobEpochDurationAtLeastComputeAndStall(t *testing.T) {
	spec := smallSpec()
	job, err := NewJob(smallConfig(ResNet50, 2), realService(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	rs := job.Run()
	for _, e := range rs.Epochs {
		if e.Compute+e.IOStall > e.Duration+time.Millisecond {
			t.Fatalf("epoch %d: compute %v + stall %v exceeds duration %v", e.Epoch, e.Compute, e.IOStall, e.Duration)
		}
		if e.IOStall <= 0 {
			t.Fatalf("I/O-bound run reported no stall")
		}
	}
}

func TestMoreWorkersReduceEpochTime(t *testing.T) {
	spec := smallSpec()
	run := func(workers int) time.Duration {
		cfg := smallConfig(ShuffleNet, 2)
		cfg.Workers = workers
		job, err := NewJob(cfg, realService(t, spec))
		if err != nil {
			t.Fatal(err)
		}
		rs := job.Run()
		return rs.Epochs[1].Duration
	}
	if t2, t8 := run(2), run(8); t8 >= t2 {
		t.Fatalf("8 workers (%v) not faster than 2 (%v)", t8, t2)
	}
}

func TestMoreGPUsReduceComputeNotIO(t *testing.T) {
	spec := smallSpec()
	run := func(gpus int) metrics.EpochStats {
		cfg := smallConfig(ResNet50, 2)
		cfg.BatchSize = 512 // large enough that compute dominates all-reduce
		cfg.GPUs = gpus
		job, err := NewJob(cfg, realService(t, spec))
		if err != nil {
			t.Fatal(err)
		}
		return job.Run().Epochs[1]
	}
	one, four := run(1), run(4)
	if four.Compute >= one.Compute {
		t.Fatalf("4 GPUs compute %v not below 1 GPU %v", four.Compute, one.Compute)
	}
	// In the I/O-bound regime total time barely moves (the paper's Fig. 12
	// observation for Default).
	if four.Duration < one.Duration/2 {
		t.Fatalf("I/O-bound job sped up 2×+ from GPUs alone: %v vs %v", four.Duration, one.Duration)
	}
}

func TestTmpfsFasterThanRemote(t *testing.T) {
	spec := smallSpec()
	mk := func(cfg storage.Config) time.Duration {
		back, err := storage.NewBackend(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob(smallConfig(ResNet18, 2), cache.NewNoCache(back))
		if err != nil {
			t.Fatal(err)
		}
		return job.Run().Epochs[1].Duration
	}
	local, remote := mk(storage.Tmpfs()), mk(storage.OrangeFS())
	if local*3 > remote {
		t.Fatalf("tmpfs epoch %v not ≥3× faster than remote %v", local, remote)
	}
}

func TestLossObservationsFeedTracker(t *testing.T) {
	spec := smallSpec()
	job, err := NewJob(smallConfig(ShuffleNet, 1), realService(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	job.Run()
	init := job.Tracker().Value(0)
	changed := 0
	for id := 0; id < spec.NumSamples; id++ {
		if job.Tracker().Value(dataset.SampleID(id)) != init {
			changed++
		}
	}
	if changed < spec.NumSamples/2 {
		t.Fatalf("only %d tracker values changed after a full epoch", changed)
	}
}

func TestAccuracyConvergesTowardBase(t *testing.T) {
	spec := smallSpec()
	cfg := smallConfig(ShuffleNet, 60)
	job, err := NewJob(cfg, realService(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	rs := job.Run()
	final := rs.FinalTop1()
	if final < ShuffleNet.BaseTop1-1.5 || final > ShuffleNet.BaseTop1+1 {
		t.Fatalf("uniform training converged to %g, want ≈%g", final, ShuffleNet.BaseTop1)
	}
	if rs.FinalTop5() < final {
		t.Fatal("Top-5 below Top-1")
	}
	// Convergence: early accuracy well below late.
	if rs.Epochs[2].Top1 >= rs.Epochs[59].Top1 {
		t.Fatal("no convergence trend")
	}
}

func TestRunConcurrentInterleavesJobs(t *testing.T) {
	spec := smallSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	// Two jobs share one backend: each must be slower than a lone job.
	lone, err := NewJob(smallConfig(ShuffleNet, 2), realService(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	loneTime := lone.Run().AvgEpochTime()

	a, err := NewJob(smallConfig(ShuffleNet, 2), cache.NewNoCache(back))
	if err != nil {
		t.Fatal(err)
	}
	cfgB := smallConfig(ShuffleNet, 2)
	cfgB.Seed = 99
	b, err := NewJob(cfgB, cache.NewNoCache(back))
	if err != nil {
		t.Fatal(err)
	}
	RunConcurrent(a, b)
	if !a.Done() || !b.Done() {
		t.Fatal("concurrent jobs not finished")
	}
	if a.Results().AvgEpochTime() <= loneTime || b.Results().AvgEpochTime() <= loneTime {
		t.Fatalf("shared-backend jobs (%v, %v) not slower than lone job (%v) — no contention",
			a.Results().AvgEpochTime(), b.Results().AvgEpochTime(), loneTime)
	}
}

func TestDeterministicRuns(t *testing.T) {
	spec := smallSpec()
	run := func() metrics.RunStats {
		job, err := NewJob(smallConfig(ResNet18, 2), realService(t, spec))
		if err != nil {
			t.Fatal(err)
		}
		return job.Run()
	}
	a, b := run(), run()
	if a.AvgEpochTime() != b.AvgEpochTime() || a.FinalTop1() != b.FinalTop1() {
		t.Fatalf("same seed diverged: %v/%g vs %v/%g", a.AvgEpochTime(), a.FinalTop1(), b.AvgEpochTime(), b.FinalTop1())
	}
}

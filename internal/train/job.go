package train

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
)

// DataService is what a training job consumes: a cache scheme (one of the
// baselines in internal/cache, an iCache server or job handle, or a raw
// storage reader). Implementations live in their own packages; this package
// only depends on the contract.
type DataService interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// BeginEpoch returns the epoch's fetch/train schedule, drawn from the
	// job's importance tracker, and lets the scheme refresh per-epoch state
	// (H-lists, substitution pools, repartitioning).
	BeginEpoch(at simclock.Time, epoch int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule
	// FetchBatch simulates one worker fetching ids sequentially from
	// virtual time at, returning the completion time and the samples
	// actually delivered (substitution may swap IDs).
	FetchBatch(at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID)
	// Stats returns cumulative cache counters.
	Stats() metrics.CacheStats
}

// Config parameterizes one training job.
type Config struct {
	// Model selects the DNN profile (GPU cost, accuracy targets).
	Model ModelProfile
	// Dataset is the training set geometry.
	Dataset dataset.Spec
	// BatchSize is the per-iteration mini-batch size (paper default 256).
	BatchSize int
	// Workers is the number of data-loading workers (paper default 6).
	Workers int
	// GPUs is the data-parallel device count on this node.
	GPUs int
	// Epochs is the number of epochs to simulate.
	Epochs int
	// PreprocessPerSample is the worker-side CPU cost (decode, augment) per
	// sample, paid after the fetch.
	PreprocessPerSample time.Duration
	// PrefetchFactor bounds how many batches each worker may run ahead of
	// the GPU (PyTorch's prefetch_factor, default 2).
	PrefetchFactor int
	// Seed drives every random choice in the job.
	Seed int64
	// TrackerInit and TrackerDecay configure the importance tracker.
	TrackerInit, TrackerDecay float64
	// Criterion selects the importance criterion (§VI): loss-based (the
	// paper's default), gradient-upper-bound, or proxy-model scoring.
	Criterion sampling.Criterion
	// EchoFactor enables Google's data echoing (§VII-B related work): while
	// the GPU would stall waiting for the next batch, it re-trains the
	// previous batch up to this many extra times. 0 disables echoing.
	// Echoing trades gradient freshness for stall time; the accuracy model
	// charges the repeated-sample distortion.
	EchoFactor int
}

// DefaultConfig mirrors the paper's training setup for the given model and
// dataset.
func DefaultConfig(model ModelProfile, spec dataset.Spec) Config {
	return Config{
		Model:               model,
		Dataset:             spec,
		BatchSize:           256,
		Workers:             6,
		GPUs:                1,
		Epochs:              10,
		PreprocessPerSample: 25 * time.Microsecond,
		PrefetchFactor:      2,
		Seed:                1,
		TrackerInit:         2.3,
		TrackerDecay:        0.3,
	}
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if err := c.Dataset.Validate(); err != nil {
		return err
	}
	switch {
	case c.BatchSize <= 0:
		return fmt.Errorf("train: BatchSize=%d, want > 0", c.BatchSize)
	case c.Workers <= 0:
		return fmt.Errorf("train: Workers=%d, want > 0", c.Workers)
	case c.GPUs <= 0:
		return fmt.Errorf("train: GPUs=%d, want > 0", c.GPUs)
	case c.Epochs <= 0:
		return fmt.Errorf("train: Epochs=%d, want > 0", c.Epochs)
	case c.PreprocessPerSample < 0:
		return fmt.Errorf("train: negative PreprocessPerSample")
	case c.PrefetchFactor <= 0:
		return fmt.Errorf("train: PrefetchFactor=%d, want > 0", c.PrefetchFactor)
	case c.EchoFactor < 0:
		return fmt.Errorf("train: EchoFactor=%d, want >= 0", c.EchoFactor)
	}
	return c.Criterion.Validate()
}

// Job simulates one training job as a resumable stepper: each Step advances
// one data-loading worker by one chunk and consumes any mini-batches that
// became ready, in order, on the GPU. Steppers let several jobs interleave
// on a shared virtual timeline (multi-job experiments) while a single job
// just steps to completion.
type Job struct {
	cfg Config
	svc DataService

	tracker *sampling.Tracker
	loss    *LossModel
	acc     *accuracyModel
	rng     *rand.Rand

	epoch int
	now   simclock.Time // epoch start

	engine  *fetchEngine
	flags   [][]bool
	gpuFree simclock.Time
	gpuDone []simclock.Time
	gpuPtr  int // next batch the GPU consumes

	// Per-epoch accumulators.
	stall, compute, fetchBusy time.Duration
	fetched, trained          int
	echoed                    int // sample-trainings performed as data echoes
	distinct                  map[dataset.SampleID]struct{}
	subLC, subHC              int
	// prevCompute/prevTrained describe the last consumed batch, which data
	// echoing replays during stalls.
	prevCompute       time.Duration
	prevTrained       int
	statsAtEpochStart metrics.CacheStats
	schedFetch        []dataset.SampleID

	run  metrics.RunStats
	done bool
}

// NewJob builds a job over the given data service.
func NewJob(cfg Config, svc DataService) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := sampling.NewTracker(cfg.Dataset.NumSamples, cfg.TrackerInit, cfg.TrackerDecay)
	if err != nil {
		return nil, err
	}
	lm, err := NewLossModel(cfg.Dataset, modelSalt(cfg.Model.Name))
	if err != nil {
		return nil, err
	}
	j := &Job{
		cfg:     cfg,
		svc:     svc,
		tracker: tr,
		loss:    lm,
		acc:     newAccuracyModel(cfg.Model, cfg.Dataset, uint64(cfg.Seed)*0x9E37+1),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		run:     metrics.RunStats{Scheme: svc.Name()},
	}
	j.beginEpoch()
	return j, nil
}

// Tracker exposes the job's importance tracker.
func (j *Job) Tracker() *sampling.Tracker { return j.tracker }

// LossModel exposes the job's loss dynamics (experiments track IV drift).
func (j *Job) LossModel() *LossModel { return j.loss }

// Done reports whether all epochs have completed.
func (j *Job) Done() bool { return j.done }

// Now reports the job's current virtual time (its GPU timeline).
func (j *Job) Now() simclock.Time { return j.gpuFree }

// Results returns the per-epoch statistics collected so far.
func (j *Job) Results() metrics.RunStats { return j.run }

// beginEpoch asks the scheme for a schedule and resets epoch state.
func (j *Job) beginEpoch() {
	j.loss.BeginEpoch(j.epoch)
	if j.cfg.Criterion == sampling.CriterionProxyModel {
		// The proxy model re-scores every sample each epoch: no stale
		// importance for skipped samples, but each score carries the
		// proxy's estimation error.
		for i := 0; i < j.tracker.Len(); i++ {
			id := dataset.SampleID(i)
			j.tracker.Observe(id, j.loss.ProxyScore(id, j.epoch))
		}
	}
	sched := j.svc.BeginEpoch(j.now, j.epoch, j.tracker, j.rng)
	j.schedFetch = sched.Fetch
	batches := sched.Batches(j.cfg.BatchSize)
	j.flags = j.flags[:0]
	for i := 0; i < len(sched.Fetch); i += j.cfg.BatchSize {
		end := i + j.cfg.BatchSize
		if end > len(sched.Fetch) {
			end = len(sched.Fetch)
		}
		j.flags = append(j.flags, sched.Train[i:end])
	}
	j.gpuFree = j.now
	j.gpuDone = make([]simclock.Time, len(batches))
	j.gpuPtr = 0
	j.stall, j.compute, j.fetchBusy = 0, 0, 0
	j.fetched, j.trained, j.echoed = 0, 0, 0
	j.prevCompute, j.prevTrained = 0, 0
	j.subLC, j.subHC = 0, 0
	j.distinct = make(map[dataset.SampleID]struct{}, len(sched.Fetch))
	j.statsAtEpochStart = j.svc.Stats()

	depth := j.cfg.Workers * j.cfg.PrefetchFactor
	j.engine = newFetchEngine(batches, 1, j.cfg.Workers, j.now,
		func(_ int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
			return j.svc.FetchBatch(at, ids)
		},
		func(k int) (simclock.Time, bool) {
			if k < depth {
				return j.now, true
			}
			if k-depth < j.gpuPtr {
				return j.gpuDone[k-depth], true
			}
			return 0, false
		},
		j.cfg.PreprocessPerSample)
}

// NextEventTime reports when the job's next worker action would start; max
// int64 when the job is done. Multi-job runners use it to pick the job that
// acts next so shared resources see requests in time order.
func (j *Job) NextEventTime() simclock.Time {
	if j.done {
		return math.MaxInt64
	}
	if _, at, ok := j.engine.nextEvent(); ok {
		return at
	}
	return j.gpuFree
}

// Step advances the job by one worker chunk (plus any GPU consumption it
// unlocks). It reports false when the job has finished all its epochs.
func (j *Job) Step() bool {
	if j.done {
		return false
	}
	if w, _, ok := j.engine.nextEvent(); ok {
		_, completed, busy := j.engine.stepWorker(w)
		j.fetchBusy += busy
		if completed {
			j.drainGPU()
		}
	} else {
		// Workers all blocked on gates: the GPU must make progress; if it
		// cannot, the pipeline configuration is broken.
		if !j.drainGPU() {
			panic("train: pipeline deadlock — prefetch depth below worker count?")
		}
	}
	if j.gpuPtr == len(j.gpuDone) {
		j.finishEpoch()
	}
	return !j.done
}

// drainGPU consumes every ready batch in schedule order, reporting whether
// any progress was made.
func (j *Job) drainGPU() bool {
	progressed := false
	for j.gpuPtr < len(j.gpuDone) {
		ready, ok := j.engine.batchReady(j.gpuPtr)
		if !ok {
			break
		}
		k := j.gpuPtr
		flags := j.flags[k]
		served := j.engine.servedIDs(k)
		batch := j.engine.batches[k]

		src := substitutionSource(j.svc)
		for i := range batch {
			if served[i] != batch[i] {
				if src == SubSourceLCache {
					j.subLC++
				} else {
					j.subHC++
				}
			}
		}
		j.fetched += len(batch)

		nTrain := 0
		for _, f := range flags {
			if f {
				nTrain++
			}
		}
		var computeT time.Duration
		if nTrain > 0 {
			computeT = j.cfg.Model.PerSampleGPU*time.Duration(nTrain)/time.Duration(j.cfg.GPUs) + j.cfg.Model.AllReduce(j.cfg.GPUs)
		}
		computeStart := j.gpuFree
		if ready > computeStart {
			// Data echoing: replay the previous batch while the next one is
			// still in flight, up to EchoFactor times, instead of stalling.
			if j.cfg.EchoFactor > 0 && j.prevCompute > 0 {
				for e := 0; e < j.cfg.EchoFactor && computeStart+j.prevCompute <= ready; e++ {
					computeStart += j.prevCompute
					j.compute += j.prevCompute
					j.echoed += j.prevTrained
				}
			}
			if ready > computeStart {
				j.stall += ready - computeStart
				computeStart = ready
			}
		}
		j.gpuFree = computeStart + computeT
		j.gpuDone[k] = j.gpuFree
		j.compute += computeT
		j.prevCompute, j.prevTrained = computeT, nTrain

		for i, id := range served {
			if flags[i] {
				l := j.loss.Train(id)
				j.tracker.Observe(id, j.cfg.Criterion.Score(l))
				j.distinct[id] = struct{}{}
				j.trained++
			}
		}
		j.gpuPtr++
		progressed = true
	}
	return progressed
}

// substitutionSource asks the service how severe its substitutions are.
func substitutionSource(svc DataService) SubSource {
	if s, ok := svc.(SubstitutionSourcer); ok {
		return ParseSubSource(s.SubstitutionSource())
	}
	return SubSourceHCache
}

// finishEpoch closes out epoch accounting, updates the accuracy model, and
// rolls into the next epoch (or completes the job).
func (j *Job) finishEpoch() {
	duration := j.gpuFree - j.now

	trainedFrac := float64(len(j.distinct)) / float64(j.cfg.Dataset.NumSamples)
	skippedImp := skippedImportanceMean(j.tracker, j.schedFetch)
	var subLCFrac, subHCFrac float64
	if j.trained > 0 {
		subLCFrac = float64(j.subLC) / float64(j.trained)
		subHCFrac = float64(j.subHC) / float64(j.trained)
	}
	var echoFrac float64
	if j.trained+j.echoed > 0 {
		echoFrac = float64(j.echoed) / float64(j.trained+j.echoed)
	}
	j.acc.observeEpoch(epochDistortion(j.cfg.Model.AccuracySensitivity, trainedFrac, skippedImp, subLCFrac, subHCFrac) +
		echoCoeff*echoFrac*j.cfg.Model.AccuracySensitivity)
	top1, top5 := j.acc.accuracy()

	after := j.svc.Stats()
	before := j.statsAtEpochStart
	j.run.Epochs = append(j.run.Epochs, metrics.EpochStats{
		Epoch:          j.epoch,
		Duration:       duration,
		IOStall:        j.stall,
		Compute:        j.compute,
		FetchBusy:      j.fetchBusy,
		SamplesFetched: j.fetched,
		SamplesTrained: j.trained,
		Cache: metrics.CacheStats{
			Hits:          after.Hits - before.Hits,
			Misses:        after.Misses - before.Misses,
			Substitutions: after.Substitutions - before.Substitutions,
			Degraded:      after.Degraded - before.Degraded,
			Inserts:       after.Inserts - before.Inserts,
			Evictions:     after.Evictions - before.Evictions,
			Rejections:    after.Rejections - before.Rejections,
		},
		Top1: top1,
		Top5: top5,
	})

	j.epoch++
	j.now = j.gpuFree
	if j.epoch >= j.cfg.Epochs {
		j.done = true
		return
	}
	j.beginEpoch()
}

// Run steps the job to completion and returns its results.
func (j *Job) Run() metrics.RunStats {
	for j.Step() {
	}
	return j.run
}

// RunConcurrent interleaves several jobs on a shared timeline: at each turn
// the job whose next worker action would start earliest acts, so shared
// FIFO resources (storage servers, a shared cache) observe requests in
// virtual-time order. It returns when every job is done.
func RunConcurrent(jobs ...*Job) {
	for {
		best := -1
		var bestT simclock.Time = math.MaxInt64
		for i, j := range jobs {
			if j.done {
				continue
			}
			if t := j.NextEventTime(); t < bestT {
				bestT = t
				best = i
			}
		}
		if best < 0 {
			return
		}
		jobs[best].Step()
	}
}

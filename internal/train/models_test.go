package train

import (
	"testing"
	"time"
)

func TestZooProfilesValidate(t *testing.T) {
	for _, m := range append(CIFARModels(), ImageNetModels()...) {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []ModelProfile{
		{},
		{Name: "x", PerSampleGPU: 0, BaseTop1: 90, BaseTop5: 99, Tau: 10, AccuracySensitivity: 1},
		{Name: "x", PerSampleGPU: time.Microsecond, BaseTop1: 0, BaseTop5: 99, Tau: 10, AccuracySensitivity: 1},
		{Name: "x", PerSampleGPU: time.Microsecond, BaseTop1: 90, BaseTop5: 80, Tau: 10, AccuracySensitivity: 1},
		{Name: "x", PerSampleGPU: time.Microsecond, BaseTop1: 90, BaseTop5: 99, Tau: 0, AccuracySensitivity: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d validated: %+v", i, m)
		}
	}
}

func TestAllReduceScaling(t *testing.T) {
	m := ResNet50
	if m.AllReduce(1) != 0 {
		t.Fatal("single GPU should not all-reduce")
	}
	two := m.AllReduce(2)
	if two <= 0 {
		t.Fatal("two GPUs need sync")
	}
	if eight := m.AllReduce(8); eight < two {
		t.Fatalf("all-reduce shrank with more GPUs: %v < %v", eight, two)
	}
}

func TestModelOrderingByCompute(t *testing.T) {
	// The zoo must preserve the relative compute intensities the paper's
	// analysis relies on: ShuffleNet lightest on CIFAR, VGG11 heaviest on
	// ImageNet.
	if !(ShuffleNet.PerSampleGPU < MobileNet.PerSampleGPU &&
		MobileNet.PerSampleGPU < ResNet18.PerSampleGPU &&
		ResNet18.PerSampleGPU < ResNet50.PerSampleGPU) {
		t.Error("CIFAR zoo compute ordering broken")
	}
	if !(SqueezeNet.PerSampleGPU < MnasNet.PerSampleGPU &&
		MnasNet.PerSampleGPU < DenseNet121.PerSampleGPU &&
		DenseNet121.PerSampleGPU < VGG11.PerSampleGPU) {
		t.Error("ImageNet zoo compute ordering broken")
	}
}

func TestModelByName(t *testing.T) {
	m, err := ModelByName("resnet18")
	if err != nil || m.Name != "resnet18" {
		t.Fatalf("ModelByName(resnet18) = %v, %v", m.Name, err)
	}
	if _, err := ModelByName("bert"); err == nil {
		t.Fatal("unknown model resolved")
	}
}

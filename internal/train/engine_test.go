package train

import (
	"math/rand"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/simclock"
)

// fixedFetch serves every sample in a constant latency per sample.
func fixedFetch(perSample time.Duration) fetchFn {
	return func(_ int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
		return at + time.Duration(len(ids))*perSample, append([]dataset.SampleID(nil), ids...)
	}
}

func openGate(k int) (simclock.Time, bool) { return 0, true }

func mkBatches(n, bs int) [][]dataset.SampleID {
	var out [][]dataset.SampleID
	id := dataset.SampleID(0)
	for len(out)*bs < n {
		batch := make([]dataset.SampleID, bs)
		for i := range batch {
			batch[i] = id
			id++
		}
		out = append(out, batch)
	}
	return out
}

func runEngine(t *testing.T, e *fetchEngine) {
	t.Helper()
	for !e.allDispatched() {
		w, _, ok := e.nextEvent()
		if !ok {
			t.Fatal("engine stalled with open gates")
		}
		e.stepWorker(w)
	}
}

func TestEngineCompletesAllBatches(t *testing.T) {
	batches := mkBatches(64, 8)
	e := newFetchEngine(batches, 1, 4, 0, fixedFetch(time.Millisecond), openGate, 0)
	runEngine(t, e)
	for k := range batches {
		ready, ok := e.batchReady(k)
		if !ok {
			t.Fatalf("batch %d never ready", k)
		}
		if ready <= 0 {
			t.Fatalf("batch %d ready at %v", k, ready)
		}
		if len(e.servedIDs(k)) != len(batches[k]) {
			t.Fatalf("batch %d served %d of %d", k, len(e.servedIDs(k)), len(batches[k]))
		}
	}
}

func TestEngineWorkersParallelize(t *testing.T) {
	// With per-sample latency L and W workers, total completion should be
	// ≈ totalSamples*L/W, not totalSamples*L.
	run := func(workers int) simclock.Time {
		batches := mkBatches(320, 8)
		e := newFetchEngine(batches, 1, workers, 0, fixedFetch(time.Millisecond), openGate, 0)
		for !e.allDispatched() {
			w, _, ok := e.nextEvent()
			if !ok {
				t.Fatal("stall")
			}
			e.stepWorker(w)
		}
		var last simclock.Time
		for k := range batches {
			if r, _ := e.batchReady(k); r > last {
				last = r
			}
		}
		return last
	}
	t1, t4 := run(1), run(4)
	if t4*3 > t1 {
		t.Fatalf("4 workers (%v) not ≥3× faster than 1 (%v)", t4, t1)
	}
}

func TestEngineNodeAffinity(t *testing.T) {
	// Batches alternate between two nodes; node 1's fetcher tags samples by
	// negating... simpler: record which node fetched each batch.
	batches := mkBatches(40, 4)
	fetchedBy := make(map[int]int) // batch → node
	fetch := func(node int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
		// Identify batch by its first sample ID / 4.
		fetchedBy[int(ids[0])/4] = node
		return at + time.Millisecond, ids
	}
	e := newFetchEngine(batches, 2, 2, 0, fetch, openGate, 0)
	runEngine(t, e)
	for k := range batches {
		if got, want := fetchedBy[k], k%2; got != want {
			t.Fatalf("batch %d fetched by node %d, want %d", k, got, want)
		}
	}
}

func TestEngineGateBlocksUntilResolved(t *testing.T) {
	batches := mkBatches(32, 4)
	allowed := 2
	gate := func(k int) (simclock.Time, bool) {
		if k < allowed {
			return 0, true
		}
		return 0, false
	}
	e := newFetchEngine(batches, 1, 4, 0, fixedFetch(time.Millisecond), gate, 0)
	steps := 0
	for {
		w, _, ok := e.nextEvent()
		if !ok {
			break
		}
		e.stepWorker(w)
		steps++
	}
	ready := 0
	for k := range batches {
		if _, ok := e.batchReady(k); ok {
			ready++
		}
	}
	if ready != allowed {
		t.Fatalf("%d batches completed with gate at %d", ready, allowed)
	}
	// Opening the gate lets the rest flow.
	allowed = len(batches)
	runEngine(t, e)
}

func TestEnginePreprocessAddsWorkerTime(t *testing.T) {
	batches := mkBatches(8, 8)
	noPrep := newFetchEngine(batches, 1, 1, 0, fixedFetch(time.Millisecond), openGate, 0)
	withPrep := newFetchEngine(mkBatches(8, 8), 1, 1, 0, fixedFetch(time.Millisecond), openGate, time.Millisecond)
	runEngine(t, noPrep)
	runEngine(t, withPrep)
	r0, _ := noPrep.batchReady(0)
	r1, _ := withPrep.batchReady(0)
	if r1 <= r0 {
		t.Fatalf("preprocess did not add time: %v vs %v", r1, r0)
	}
}

func TestEngineArrivalOrderNonDecreasing(t *testing.T) {
	// The property that makes the FIFO storage model exact: the engine
	// issues fetches in non-decreasing virtual time.
	batches := mkBatches(256, 8)
	var last simclock.Time = -1
	fetch := func(_ int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
		if at < last {
			t.Fatalf("arrival went backwards: %v after %v", at, last)
		}
		last = at
		return at + time.Duration(len(ids))*time.Millisecond, ids
	}
	e := newFetchEngine(batches, 1, 6, 0, fetch, openGate, 0)
	runEngine(t, e)
}

// TestEngineRandomLatencyProperty: under random per-sample latencies every
// batch completes exactly once, serves exactly its samples, and ready times
// respect the gates.
func TestEngineRandomLatencyProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		batches := mkBatches(40+rng.Intn(80), 1+rng.Intn(16))
		gateAt := make([]simclock.Time, len(batches))
		for k := range gateAt {
			gateAt[k] = time.Duration(rng.Intn(5)) * time.Millisecond
		}
		fetch := func(_ int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
			return at + time.Duration(1+rng.Intn(2000))*time.Microsecond, ids
		}
		gate := func(k int) (simclock.Time, bool) { return gateAt[k], true }
		e := newFetchEngine(batches, 1+rng.Intn(3), 1+rng.Intn(6), 0, fetch, gate, 0)
		runEngine(t, e)
		for k := range batches {
			ready, ok := e.batchReady(k)
			if !ok {
				t.Fatalf("seed %d: batch %d incomplete", seed, k)
			}
			if ready < gateAt[k] {
				t.Fatalf("seed %d: batch %d ready %v before gate %v", seed, k, ready, gateAt[k])
			}
			if len(e.servedIDs(k)) != len(batches[k]) {
				t.Fatalf("seed %d: batch %d served %d of %d", seed, k, len(e.servedIDs(k)), len(batches[k]))
			}
		}
	}
}

// Package train simulates the DNN training side of the paper: the PyTorch
// data-loading pipeline (prefetch workers feeding one or more GPUs), the
// per-sample loss dynamics that drive loss-based importance sampling, and an
// analytic accuracy model calibrated to reproduce the paper's Tables I–III
// and Fig. 7.
//
// This package is the substitution for the authors' Python/PyTorch client
// (see DESIGN.md): the cache under test only ever observes fetch requests
// and importance updates, and both are generated here with the same timing
// structure a real data loader produces — workers fetch mini-batches
// concurrently, the GPU consumes them in order, and a late batch stalls the
// GPU, which is precisely the "data stall" time the paper measures.
package train

import (
	"fmt"
	"time"
)

// ModelProfile describes one DNN model's simulation parameters. GPU costs
// are calibrated to an A100 at the paper's default batch size; accuracy
// targets are the well-known reference numbers for each model/dataset pair
// (the paper's Default column).
type ModelProfile struct {
	// Name is the model's identifier in experiment output.
	Name string
	// PerSampleGPU is forward+backward time per sample on one GPU.
	PerSampleGPU time.Duration
	// AllReduceBase is the per-iteration gradient-synchronization cost when
	// training on more than one GPU (grows mildly with GPU count).
	AllReduceBase time.Duration
	// BaseTop1/BaseTop5 are the converged accuracies (percent) under
	// Default (uniform sampling, no substitution).
	BaseTop1, BaseTop5 float64
	// Tau is the convergence time constant in epochs.
	Tau float64
	// AccuracySensitivity scales how strongly reduced sample diversity
	// hurts this model's dataset (ImageNet-class problems lose more than
	// CIFAR-class ones; the paper bounds losses at 1% and 2% respectively).
	AccuracySensitivity float64
}

// Validate reports whether the profile is usable.
func (m ModelProfile) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("train: empty model name")
	case m.PerSampleGPU <= 0:
		return fmt.Errorf("train: model %q PerSampleGPU=%v, want > 0", m.Name, m.PerSampleGPU)
	case m.BaseTop1 <= 0 || m.BaseTop1 > 100 || m.BaseTop5 < m.BaseTop1 || m.BaseTop5 > 100:
		return fmt.Errorf("train: model %q accuracy targets (%g, %g) invalid", m.Name, m.BaseTop1, m.BaseTop5)
	case m.Tau <= 0:
		return fmt.Errorf("train: model %q Tau=%g, want > 0", m.Name, m.Tau)
	case m.AccuracySensitivity <= 0:
		return fmt.Errorf("train: model %q AccuracySensitivity=%g, want > 0", m.Name, m.AccuracySensitivity)
	}
	return nil
}

// AllReduce returns the per-iteration synchronization cost for g GPUs (or
// nodes). Ring all-reduce over NVLink/10GbE: zero for a single device, then
// a base cost that grows slowly with participant count.
func (m ModelProfile) AllReduce(g int) time.Duration {
	if g <= 1 {
		return 0
	}
	return m.AllReduceBase + m.AllReduceBase*time.Duration(g-2)/4
}

// The CIFAR10 model zoo (32×32 inputs). Per-sample GPU times correspond to
// a few ms per 256-batch iteration for the light models up to ~25 ms for
// ResNet50 — the regime in which the paper's Fig. 1 measures 44–89% I/O
// fractions on four A100s.
var (
	// ShuffleNet is the lightest model; the paper gets its best speedup
	// (2.3×) here because training is most I/O-bound.
	ShuffleNet = ModelProfile{Name: "shufflenet", PerSampleGPU: 18 * time.Microsecond,
		AllReduceBase: 2 * time.Millisecond, BaseTop1: 90.9, BaseTop5: 99.6, Tau: 11, AccuracySensitivity: 1.0}
	// MobileNet on CIFAR10.
	MobileNet = ModelProfile{Name: "mobilenet", PerSampleGPU: 32 * time.Microsecond,
		AllReduceBase: 2500 * time.Microsecond, BaseTop1: 92.3, BaseTop5: 99.7, Tau: 11, AccuracySensitivity: 1.0}
	// ResNet18 on CIFAR10.
	ResNet18 = ModelProfile{Name: "resnet18", PerSampleGPU: 70 * time.Microsecond,
		AllReduceBase: 3 * time.Millisecond, BaseTop1: 94.6, BaseTop5: 99.8, Tau: 12, AccuracySensitivity: 1.0}
	// ResNet50 on CIFAR10.
	ResNet50 = ModelProfile{Name: "resnet50", PerSampleGPU: 130 * time.Microsecond,
		AllReduceBase: 6 * time.Millisecond, BaseTop1: 95.1, BaseTop5: 99.8, Tau: 13, AccuracySensitivity: 1.0}
)

// The ImageNet model zoo (224×224 inputs).
var (
	// SqueezeNet is the lightest ImageNet model in the paper's set.
	SqueezeNet = ModelProfile{Name: "squeezenet", PerSampleGPU: 180 * time.Microsecond,
		AllReduceBase: 3 * time.Millisecond, BaseTop1: 58.1, BaseTop5: 80.4, Tau: 20, AccuracySensitivity: 1.9}
	// MnasNet on ImageNet.
	MnasNet = ModelProfile{Name: "mnasnet", PerSampleGPU: 230 * time.Microsecond,
		AllReduceBase: 3500 * time.Microsecond, BaseTop1: 73.4, BaseTop5: 91.5, Tau: 21, AccuracySensitivity: 1.9}
	// DenseNet121 on ImageNet; compute-heavy enough that iCache runs at
	// Oracle speed in the paper's Fig. 8.
	DenseNet121 = ModelProfile{Name: "densenet121", PerSampleGPU: 620 * time.Microsecond,
		AllReduceBase: 7 * time.Millisecond, BaseTop1: 74.4, BaseTop5: 91.9, Tau: 22, AccuracySensitivity: 1.9}
	// VGG11 is the heaviest model in the zoo.
	VGG11 = ModelProfile{Name: "vgg11", PerSampleGPU: 900 * time.Microsecond,
		AllReduceBase: 16 * time.Millisecond, BaseTop1: 69.0, BaseTop5: 88.6, Tau: 18, AccuracySensitivity: 1.9}
)

// CIFARModels lists the paper's CIFAR10 workloads in presentation order.
func CIFARModels() []ModelProfile {
	return []ModelProfile{ShuffleNet, ResNet18, MobileNet, ResNet50}
}

// ImageNetModels lists the paper's ImageNet workloads in presentation order.
func ImageNetModels() []ModelProfile {
	return []ModelProfile{VGG11, MnasNet, SqueezeNet, DenseNet121}
}

// modelSalt hashes a model name into the loss model's per-architecture
// perturbation seed (FNV-1a).
func modelSalt(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// ModelByName resolves a profile by its Name field.
func ModelByName(name string) (ModelProfile, error) {
	for _, m := range append(CIFARModels(), ImageNetModels()...) {
		if m.Name == name {
			return m, nil
		}
	}
	return ModelProfile{}, fmt.Errorf("train: unknown model %q", name)
}

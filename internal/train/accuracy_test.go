package train

import (
	"testing"

	"icache/internal/dataset"
	"icache/internal/sampling"
)

func TestParseSubSource(t *testing.T) {
	if ParseSubSource("none") != SubSourceNone {
		t.Error("none")
	}
	if ParseSubSource("lcache") != SubSourceLCache {
		t.Error("lcache")
	}
	if ParseSubSource("hcache") != SubSourceHCache {
		t.Error("hcache")
	}
	if ParseSubSource("anything-else") != SubSourceHCache {
		t.Error("unknown strings must default to the severe class")
	}
}

func TestEpochDistortionShapes(t *testing.T) {
	// Full coverage, no substitution: zero distortion.
	if d := epochDistortion(1, 1.0, 0, 0, 0); d != 0 {
		t.Fatalf("clean epoch distorted: %g", d)
	}
	// Skipping unimportant samples costs much less than skipping uniformly.
	low := epochDistortion(1, 0.7, 0.2, 0, 0)
	high := epochDistortion(1, 0.7, 0.6, 0, 0)
	if low >= high {
		t.Fatalf("importance-aligned skipping (%g) not cheaper than blind (%g)", low, high)
	}
	// H-substitution costs more than L-substitution at equal volume.
	lc := epochDistortion(1, 1, 0, 0.1, 0)
	hc := epochDistortion(1, 1, 0, 0, 0.1)
	if lc >= hc {
		t.Fatalf("ST_LC (%g) not cheaper than ST_HC (%g)", lc, hc)
	}
	// Substitution penalty saturates.
	at20 := epochDistortion(1, 1, 0, 0.20, 0)
	at80 := epochDistortion(1, 1, 0, 0.80, 0)
	if at20 != at80 {
		t.Fatalf("substitution penalty did not saturate: %g vs %g", at20, at80)
	}
	// Sensitivity scales linearly.
	if x1, x2 := epochDistortion(1, 0.7, 0.3, 0.1, 0), epochDistortion(2, 0.7, 0.3, 0.1, 0); x2 != 2*x1 {
		t.Fatalf("sensitivity not linear: %g vs %g", x1, x2)
	}
	// trainedFrac > 1 (substitution can train duplicates) clamps cleanly.
	if d := epochDistortion(1, 1.1, 0.5, 0, 0); d != 0 {
		t.Fatalf("over-coverage produced distortion %g", d)
	}
}

func TestAccuracyModelConvergence(t *testing.T) {
	m := newAccuracyModel(ResNet18, dataset.CIFAR10(), 1)
	var prev float64
	for e := 0; e < 90; e++ {
		m.observeEpoch(0)
		top1, top5 := m.accuracy()
		if top5 < top1 {
			t.Fatalf("epoch %d: top5 %g < top1 %g", e, top5, top1)
		}
		if e > 5 && top1 < prev-0.2 {
			t.Fatalf("epoch %d: clean accuracy regressed %g → %g", e, prev, top1)
		}
		prev = top1
	}
	if prev < ResNet18.BaseTop1-1 {
		t.Fatalf("converged to %g, want ≈%g", prev, ResNet18.BaseTop1)
	}
}

func TestAccuracyModelPenaltyLowersFinal(t *testing.T) {
	clean := newAccuracyModel(ResNet18, dataset.CIFAR10(), 1)
	dirty := newAccuracyModel(ResNet18, dataset.CIFAR10(), 1)
	for e := 0; e < 60; e++ {
		clean.observeEpoch(0)
		dirty.observeEpoch(0.8)
	}
	c, _ := clean.accuracy()
	d, _ := dirty.accuracy()
	if d >= c {
		t.Fatalf("distorted run (%g) not below clean (%g)", d, c)
	}
	if c-d > 1.2 || c-d < 0.5 {
		t.Fatalf("penalty %g points, want ≈0.8 (EMA of the per-epoch distortion)", c-d)
	}
}

func TestSkippedImportanceMean(t *testing.T) {
	tr, err := sampling.NewTracker(10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(dataset.SampleID(i), float64(i))
	}
	// Fetch the top half: skipped are ids 0..4, percentiles 0..4/9.
	fetched := []dataset.SampleID{5, 6, 7, 8, 9}
	got := skippedImportanceMean(tr, fetched)
	want := (0.0 + 1 + 2 + 3 + 4) / 9 / 5
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("skipped mean = %g, want %g", got, want)
	}
	// Empty fetch: everything skipped; mean percentile of all ≈ 0.5.
	if all := skippedImportanceMean(tr, nil); all < 0.4 || all > 0.6 {
		t.Fatalf("all-skipped mean = %g, want ≈0.5", all)
	}
	full := make([]dataset.SampleID, 10)
	for i := range full {
		full[i] = dataset.SampleID(i)
	}
	if got := skippedImportanceMean(tr, full); got != 0 {
		t.Fatalf("full fetch skipped mean = %g, want 0", got)
	}
}

package train

import (
	"math"

	"icache/internal/dataset"
)

// LossModel produces per-sample training losses with the two properties the
// paper's importance-sampling machinery depends on:
//
//  1. Losses decay as a sample is trained more, with hard samples (high
//     intrinsic difficulty) decaying slower and to a higher floor — so the
//     top of the loss ranking is persistent enough for a history-based
//     H-list to be worth caching.
//  2. Losses carry epoch-varying noise — so a sample's importance value
//     drifts across epochs, reproducing Fig. 3 and forcing the H-heap's
//     shadow-refresh machinery to earn its keep.
//
// This is the substitution for real SGD loss signals; the constants are
// chosen so the loss distribution is right-skewed (most samples become easy)
// like the empirical distributions in the loss-based IS literature.
type LossModel struct {
	spec      dataset.Spec
	modelSalt uint64
	count     []int32 // times each sample has been trained
	epoch     int
}

// NewLossModel builds a loss model for the dataset as seen by one DNN
// architecture. modelSalt perturbs which samples the model finds hard:
// different architectures broadly agree on difficulty but not exactly, and
// that partial disagreement is what the paper's multi-job experiment (two
// models ranking the same dataset differently) relies on. Salt 0 gives the
// dataset's intrinsic difficulty unmodified.
func NewLossModel(spec dataset.Spec, modelSalt uint64) (*LossModel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &LossModel{spec: spec, modelSalt: modelSalt, count: make([]int32, spec.NumSamples)}, nil
}

// difficulty is the sample's difficulty through this model's eyes: the
// intrinsic value with a bounded model-specific perturbation.
func (m *LossModel) difficulty(id dataset.SampleID) float64 {
	d := m.spec.Difficulty(id)
	if m.modelSalt == 0 {
		return d
	}
	d += 0.6 * (dataset.Unit(uint64(id), m.modelSalt) - 0.5)
	if d < 0.02 {
		d = 0.02
	}
	if d > 0.98 {
		d = 0.98
	}
	return d
}

// BeginEpoch advances the noise phase; call once per training epoch.
func (m *LossModel) BeginEpoch(epoch int) { m.epoch = epoch }

// Peek returns the loss the sample would report if trained now, without
// recording a training step.
func (m *LossModel) Peek(id dataset.SampleID) float64 {
	return m.loss(id, m.count[id])
}

// Train records one training step on the sample and returns its loss.
func (m *LossModel) Train(id dataset.SampleID) float64 {
	l := m.loss(id, m.count[id])
	m.count[id]++
	return l
}

// TrainCount reports how many times a sample has been trained.
func (m *LossModel) TrainCount(id dataset.SampleID) int { return int(m.count[id]) }

// ProxyScore is the lightweight-model importance estimate of §VI: a cheap
// model scores the sample without training on it. It sees the sample's true
// difficulty-derived loss trajectory only approximately — the proxy's own
// generalization error appears as a wider, epoch-varying perturbation than
// the real model's loss noise.
func (m *LossModel) ProxyScore(id dataset.SampleID, epoch int) float64 {
	base := m.loss(id, m.count[id])
	// ±35% proxy error, deterministic in (sample, epoch).
	noise := 0.70 * (dataset.Unit(uint64(id)*0x9E3779B1+uint64(epoch), m.spec.Seed^0x9407) - 0.5)
	s := base * (1 + noise)
	if s < 0.01 {
		s = 0.01
	}
	return s
}

// loss computes the deterministic loss value for a sample with k prior
// training exposures at the current epoch.
func (m *LossModel) loss(id dataset.SampleID, k int32) float64 {
	d := m.difficulty(id)
	const initLoss = 2.3 // ≈ ln(10): untrained CIFAR10-style cross-entropy
	floor := 0.04 + 2.0*d*d
	rate := 0.45 * (1.15 - d)
	base := floor + (initLoss-floor)*math.Exp(-rate*float64(k))
	// Epoch-correlated multiplicative noise, ±15%, deterministic in
	// (sample, epoch) so reruns reproduce exactly.
	noise := 0.30 * (dataset.Unit(uint64(id)*2654435761+uint64(m.epoch), m.spec.Seed^0x105E) - 0.5)
	l := base * (1 + noise)
	if l < 0.01 {
		l = 0.01
	}
	return l
}

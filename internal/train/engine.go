package train

import (
	"math"
	"time"

	"icache/internal/dataset"
	"icache/internal/simclock"
)

// fetchChunk is the number of samples a worker fetches per scheduling turn.
// It is 1 so that workers interleave at request granularity: the engine
// always advances the worker with the earliest virtual time, which makes
// arrivals at the shared FIFO resources (storage servers, network link)
// globally non-decreasing — the regime in which the FIFO queueing model is
// exact. Fetching whole batches atomically would serialize the workers and
// understate pipeline concurrency by the worker count.
const fetchChunk = 1

// fetchFn fetches ids for a node's worker starting at virtual time at.
type fetchFn func(node int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID)

// gateFn reports the earliest time batch k may start fetching. ok=false
// means the gate is not resolvable yet (the consumer has not reached the
// batch that opens it), so the worker must wait for consumer progress.
type gateFn func(k int) (simclock.Time, bool)

// engWorker is one data-loading worker's state.
type engWorker struct {
	node  int
	at    simclock.Time
	batch int // global batch index being fetched, -1 when idle
	pos   int // samples fetched so far within the batch
}

// fetchEngine drives data-loading workers over a set of mini-batches with
// node affinity: batch k belongs to node k%nodes and may only be fetched by
// that node's workers. It produces per-batch ready times and the IDs
// actually served.
type fetchEngine struct {
	batches    [][]dataset.SampleID
	nodes      int
	fetch      fetchFn
	gate       gateFn
	preprocess time.Duration

	workers  []engWorker
	nodeNext []int // per node: ordinal of its next unassigned batch

	ready    []simclock.Time
	readySet []bool
	served   [][]dataset.SampleID
}

func newFetchEngine(batches [][]dataset.SampleID, nodes, workersPerNode int, start simclock.Time,
	fetch fetchFn, gate gateFn, preprocess time.Duration) *fetchEngine {
	e := &fetchEngine{
		batches:    batches,
		nodes:      nodes,
		fetch:      fetch,
		gate:       gate,
		preprocess: preprocess,
		nodeNext:   make([]int, nodes),
		ready:      make([]simclock.Time, len(batches)),
		readySet:   make([]bool, len(batches)),
		served:     make([][]dataset.SampleID, len(batches)),
	}
	for n := 0; n < nodes; n++ {
		for w := 0; w < workersPerNode; w++ {
			e.workers = append(e.workers, engWorker{node: n, at: start, batch: -1})
		}
	}
	return e
}

// nodeBatch maps a node's ordinal to the global batch index.
func (e *fetchEngine) nodeBatch(node, ordinal int) int { return ordinal*e.nodes + node }

// nodeBatchCount reports how many batches a node owns.
func (e *fetchEngine) nodeBatchCount(node int) int {
	return (len(e.batches) - node + e.nodes - 1) / e.nodes
}

// nextEvent returns the worker that can act soonest and when. ok=false
// means no worker can act until the consumer makes progress (all idle
// workers blocked on unresolved gates).
func (e *fetchEngine) nextEvent() (worker int, at simclock.Time, ok bool) {
	best := -1
	var bestT simclock.Time = math.MaxInt64
	for i := range e.workers {
		w := &e.workers[i]
		if w.batch >= 0 {
			if w.at < bestT {
				best, bestT = i, w.at
			}
			continue
		}
		ord := e.nodeNext[w.node]
		if ord >= e.nodeBatchCount(w.node) {
			continue // node's batches exhausted
		}
		k := e.nodeBatch(w.node, ord)
		g, resolvable := e.gate(k)
		if !resolvable {
			continue
		}
		t := w.at
		if g > t {
			t = g
		}
		if t < bestT {
			best, bestT = i, t
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestT, true
}

// stepWorker advances one worker by one chunk (claiming a batch first if
// idle). It reports the batch index the worker touched and whether that
// batch just completed. fetchBusy time is returned for accounting.
func (e *fetchEngine) stepWorker(worker int) (batch int, completed bool, busy time.Duration) {
	w := &e.workers[worker]
	if w.batch < 0 {
		ord := e.nodeNext[w.node]
		k := e.nodeBatch(w.node, ord)
		e.nodeNext[w.node]++
		w.batch = k
		w.pos = 0
		if g, ok := e.gate(k); ok && g > w.at {
			w.at = g
		}
		if e.served[k] == nil {
			e.served[k] = make([]dataset.SampleID, 0, len(e.batches[k]))
		}
	}
	k := w.batch
	ids := e.batches[k]
	endPos := w.pos + fetchChunk
	if endPos > len(ids) {
		endPos = len(ids)
	}
	start := w.at
	end, served := e.fetch(w.node, w.at, ids[w.pos:endPos])
	end += time.Duration(endPos-w.pos) * e.preprocess
	e.served[k] = append(e.served[k], served...)
	w.at = end
	w.pos = endPos
	busy = end - start
	if w.pos == len(ids) {
		e.ready[k] = end
		e.readySet[k] = true
		w.batch = -1
		return k, true, busy
	}
	return k, false, busy
}

// batchReady reports whether batch k has been fully fetched, and when.
func (e *fetchEngine) batchReady(k int) (simclock.Time, bool) {
	return e.ready[k], e.readySet[k]
}

// servedIDs returns the IDs delivered for a completed batch.
func (e *fetchEngine) servedIDs(k int) []dataset.SampleID { return e.served[k] }

// allDispatched reports whether every batch has been claimed by a worker.
func (e *fetchEngine) allDispatched() bool {
	for n := 0; n < e.nodes; n++ {
		if e.nodeNext[n] < e.nodeBatchCount(n) {
			return false
		}
	}
	for i := range e.workers {
		if e.workers[i].batch >= 0 {
			return false
		}
	}
	return true
}

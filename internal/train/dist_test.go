package train

import (
	"testing"

	"icache/internal/cache"
	"icache/internal/icache"
	"icache/internal/sampling"
	"icache/internal/storage"
)

func distBackend(t *testing.T) *storage.Backend {
	t.Helper()
	back, err := storage.NewBackend(smallSpec(), storage.NFS())
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestDistDefaultRuns(t *testing.T) {
	back := distBackend(t)
	svc := cache.NewDistDefault(back, 2, back.Spec().TotalBytes()/5, cache.DefaultServiceConfig())
	cfg := smallConfig(ResNet18, 2)
	job, err := NewDistJob(cfg, svc)
	if err != nil {
		t.Fatal(err)
	}
	rs := job.Run()
	if len(rs.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(rs.Epochs))
	}
	for _, e := range rs.Epochs {
		if e.SamplesFetched != smallSpec().NumSamples {
			t.Fatalf("fetched %d, want full dataset", e.SamplesFetched)
		}
		if e.Duration <= 0 || e.IOStall < 0 {
			t.Fatalf("bad epoch stats: %+v", e)
		}
	}
}

func TestDistICacheBeatsDistDefault(t *testing.T) {
	// The paper's §V-G claim in miniature: distributed iCache over a shared
	// NFS backend clearly outruns uncoordinated per-node LRUs.
	run := func(mk func(*storage.Backend) DistService) float64 {
		back := distBackend(t)
		cfg := smallConfig(ResNet18, 5)
		job, err := NewDistJob(cfg, mk(back))
		if err != nil {
			t.Fatal(err)
		}
		rs := job.Run()
		steady := rs
		steady.Epochs = rs.Epochs[2:]
		return float64(steady.AvgEpochTime())
	}
	defTime := run(func(b *storage.Backend) DistService {
		return cache.NewDistDefault(b, 2, b.Spec().TotalBytes()/5, cache.DefaultServiceConfig())
	})
	icTime := run(func(b *storage.Backend) DistService {
		cl, err := icache.NewCluster(b, icache.DefaultClusterConfig(2, b.Spec().TotalBytes()/5), sampling.DefaultIIS(), 7)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	})
	if icTime >= defTime {
		t.Fatalf("distributed iCache (%v) not faster than distributed Default (%v)", icTime, defTime)
	}
}

func TestDistMoreNodesFaster(t *testing.T) {
	run := func(nodes int) float64 {
		back := distBackend(t)
		cl, err := icache.NewCluster(back, icache.DefaultClusterConfig(nodes, back.Spec().TotalBytes()/5), sampling.DefaultIIS(), 7)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig(ResNet18, 4)
		job, err := NewDistJob(cfg, cl)
		if err != nil {
			t.Fatal(err)
		}
		rs := job.Run()
		steady := rs
		steady.Epochs = rs.Epochs[2:]
		return float64(steady.AvgEpochTime())
	}
	if t2, t4 := run(2), run(4); t4 >= t2 {
		t.Fatalf("4 nodes (%v) not faster than 2 (%v)", t4, t2)
	}
}

func TestNewDistJobValidates(t *testing.T) {
	back := distBackend(t)
	svc := cache.NewDistDefault(back, 2, 1<<20, cache.DefaultServiceConfig())
	bad := smallConfig(ResNet18, 1)
	bad.BatchSize = 0
	if _, err := NewDistJob(bad, svc); err == nil {
		t.Fatal("invalid config accepted")
	}
}

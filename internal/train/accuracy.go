package train

import (
	"math"

	"icache/internal/dataset"
	"icache/internal/sampling"
)

// SubSource classifies where a scheme's substituted samples come from, which
// determines how much substitution distorts the training distribution
// (§V-E): substituting from the L-cache only re-weights unimportant samples,
// while substituting from the H-cache (or importance-blind substitution à la
// Quiver) over-trains important ones and shifts the distribution importance
// sampling chose.
type SubSource int

const (
	// SubSourceNone means the scheme never substitutes.
	SubSourceNone SubSource = iota
	// SubSourceLCache is iCache's shipping policy.
	SubSourceLCache
	// SubSourceHCache substitutes with important samples (Table III's
	// ST_HC, and the severity class for importance-blind substitution).
	SubSourceHCache
)

// SubstitutionSourcer is optionally implemented by data services to declare
// their substitution severity; the string is one of "none", "lcache", or
// "hcache". Schemes that do not implement it but still substitute are
// treated as "hcache" (importance-blind substitution carries the same
// distribution distortion). The contract is stringly typed so cache
// implementations do not need to import this package.
type SubstitutionSourcer interface {
	SubstitutionSource() string
}

// ParseSubSource maps a SubstitutionSourcer string to a SubSource.
func ParseSubSource(s string) SubSource {
	switch s {
	case "none":
		return SubSourceNone
	case "lcache":
		return SubSourceLCache
	default:
		return SubSourceHCache
	}
}

// Accuracy distortion coefficients, in percentage points. Calibrated so the
// paper's bounds hold: iCache loses <1% Top-1 on CIFAR-class datasets and
// <2% on ImageNet-class ones (Tables I/II), and ST_HC loses visibly more
// than ST_LC (Table III).
const (
	// skipCoeff scales the penalty for samples never trained in an epoch,
	// weighted by how important the skipped samples were.
	skipCoeff = 4.0
	// subLCCoeff scales the penalty per L-cache-substituted request.
	subLCCoeff = 5.0
	// subHCCoeff scales the penalty per H-cache/importance-blind
	// substituted request.
	subHCCoeff = 8.0
	// subSaturation caps the effective substitution fraction: beyond it,
	// additional substitutions redraw from the same distributional mass the
	// earlier ones already covered, so the marginal distortion vanishes.
	// Without the cap a compute-bound job whose loader substitutes most
	// L-requests would be charged far past the paper's observed bounds.
	subSaturation = 0.15
	// echoCoeff scales the penalty per echoed (replayed-batch) training
	// step: repeated gradient steps on the same mini-batch add little
	// information and mildly overfit it, as the data-echoing literature
	// reports.
	echoCoeff = 2.5
	// top5Damping is how much less Top-5 accuracy suffers than Top-1.
	top5Damping = 0.35
)

// accuracyModel tracks a job's accumulated training-signal distortion and
// converts it into Top-1/Top-5 accuracy estimates.
type accuracyModel struct {
	model ModelProfile
	spec  dataset.Spec

	// penEMA is the smoothed per-epoch distortion in accuracy points.
	penEMA  float64
	epochs  int
	rngSalt uint64
}

func newAccuracyModel(model ModelProfile, spec dataset.Spec, salt uint64) *accuracyModel {
	return &accuracyModel{model: model, spec: spec, rngSalt: salt}
}

// epochDistortion computes one epoch's distortion in accuracy points.
//
//   - trainedFrac: fraction of the dataset trained at least once this epoch.
//   - skippedImportance: mean importance percentile (0..1) of the samples
//     that were skipped — uniform skipping hurts much more than skipping
//     the least important tail, which is why importance sampling works.
//   - subLCFrac / subHCFrac: substituted requests as a fraction of trained
//     samples, split by substitution source.
func epochDistortion(sens, trainedFrac, skippedImportance, subLCFrac, subHCFrac float64) float64 {
	missed := 1 - trainedFrac
	if missed < 0 {
		missed = 0
	}
	if subLCFrac > subSaturation {
		subLCFrac = subSaturation
	}
	if subHCFrac > subSaturation {
		subHCFrac = subSaturation
	}
	p := skipCoeff * missed * skippedImportance * skippedImportance
	p += subLCCoeff * subLCFrac
	p += subHCCoeff * subHCFrac
	return p * sens
}

// observeEpoch folds one epoch's distortion into the running state.
func (a *accuracyModel) observeEpoch(distortion float64) {
	// Early epochs matter less for the final model; smooth with an EMA so
	// transient warm-up behaviour (cold caches, probe phases) washes out.
	const beta = 0.7
	if a.epochs == 0 {
		a.penEMA = distortion
	} else {
		a.penEMA = beta*a.penEMA + (1-beta)*distortion
	}
	a.epochs++
}

// accuracy returns the (Top-1, Top-5) estimate after the observed epochs.
func (a *accuracyModel) accuracy() (top1, top5 float64) {
	conv := 1 - math.Exp(-float64(a.epochs)/a.model.Tau)
	// Small deterministic run-to-run jitter (±0.05 points), as real
	// training exhibits.
	jitter := 0.1 * (dataset.Unit(uint64(a.epochs), a.rngSalt) - 0.5)
	top1 = a.model.BaseTop1*conv - a.penEMA + jitter
	top5 = a.model.BaseTop5*conv - top5Damping*a.penEMA + jitter*top5Damping
	if top1 < 0 {
		top1 = 0
	}
	if top5 > 100 {
		top5 = 100
	}
	if top5 < top1 {
		top5 = top1
	}
	return top1, top5
}

// skippedImportanceMean computes the mean importance percentile of the
// samples NOT fetched this epoch. fetched must be the epoch's schedule.
func skippedImportanceMean(tr *sampling.Tracker, fetched []dataset.SampleID) float64 {
	n := tr.Len()
	if len(fetched) >= n {
		return 0
	}
	perc := tr.Percentiles()
	seen := make([]bool, n)
	for _, id := range fetched {
		seen[id] = true
	}
	var sum float64
	count := 0
	for i := 0; i < n; i++ {
		if !seen[i] {
			sum += perc[i]
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

package train

import (
	"testing"

	"icache/internal/cache"
	"icache/internal/storage"
)

func echoJob(t *testing.T, factor int) *Job {
	t.Helper()
	back, err := storage.NewBackend(smallSpec(), storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(ResNet50, 3)
	cfg.EchoFactor = factor
	job, err := NewJob(cfg, cache.NewNoCache(back))
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func TestEchoConvertsStallToCompute(t *testing.T) {
	plain := echoJob(t, 0).Run()
	echoed := echoJob(t, 2).Run()
	p, e := plain.Epochs[2], echoed.Epochs[2]
	if e.IOStall >= p.IOStall {
		t.Fatalf("echo did not reduce stall: %v vs %v", e.IOStall, p.IOStall)
	}
	if e.Compute <= p.Compute {
		t.Fatalf("echo did not add compute: %v vs %v", e.Compute, p.Compute)
	}
	// Epoch duration is bounded by data arrival either way: within 5%.
	diff := float64(e.Duration-p.Duration) / float64(p.Duration)
	if diff > 0.05 || diff < -0.05 {
		t.Fatalf("echo changed epoch duration by %.1f%%", 100*diff)
	}
	// Replayed gradients cost accuracy.
	if echoed.FinalTop1() >= plain.FinalTop1() {
		t.Fatalf("echo accuracy %g not below plain %g", echoed.FinalTop1(), plain.FinalTop1())
	}
}

func TestEchoFactorValidation(t *testing.T) {
	back, err := storage.NewBackend(smallSpec(), storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(ShuffleNet, 1)
	cfg.EchoFactor = -1
	if _, err := NewJob(cfg, cache.NewNoCache(back)); err == nil {
		t.Fatal("negative echo factor accepted")
	}
}

package train

import (
	"testing"

	"icache/internal/cache"
	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/storage"
)

func criterionJob(t *testing.T, crit sampling.Criterion, epochs int) *Job {
	t.Helper()
	spec := smallSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(ShuffleNet, epochs)
	cfg.Criterion = crit
	job, err := NewJob(cfg, cache.NewNoCache(back))
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func TestCriterionValidationInConfig(t *testing.T) {
	spec := smallSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(ShuffleNet, 1)
	cfg.Criterion = sampling.Criterion(42)
	if _, err := NewJob(cfg, cache.NewNoCache(back)); err == nil {
		t.Fatal("bogus criterion accepted")
	}
}

func TestProxyCriterionRefreshesSkippedSamples(t *testing.T) {
	// Under the proxy criterion every sample's importance moves each epoch,
	// including samples never trained; under loss-based it stays at the
	// init value until first trained.
	lossJob := criterionJob(t, sampling.CriterionLoss, 1)
	proxyJob := criterionJob(t, sampling.CriterionProxyModel, 1)

	// Step both jobs a little: enough for beginEpoch to run, before any
	// sample has trained twice.
	lossJob.Step()
	proxyJob.Step()

	spec := smallSpec()
	lossMoved, proxyMoved := 0, 0
	for i := 0; i < spec.NumSamples; i++ {
		if lossJob.Tracker().Value(dataset.SampleID(i)) != lossJob.cfg.TrackerInit {
			lossMoved++
		}
		if proxyJob.Tracker().Value(dataset.SampleID(i)) != proxyJob.cfg.TrackerInit {
			proxyMoved++
		}
	}
	if proxyMoved < spec.NumSamples {
		t.Fatalf("proxy criterion refreshed only %d/%d samples", proxyMoved, spec.NumSamples)
	}
	if lossMoved > spec.NumSamples/2 {
		t.Fatalf("loss criterion moved %d samples before training them", lossMoved)
	}
}

func TestGradUpperCriterionRunsToCompletion(t *testing.T) {
	job := criterionJob(t, sampling.CriterionGradUpper, 2)
	rs := job.Run()
	if len(rs.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(rs.Epochs))
	}
	// The tracker must hold superlinear scores: max should exceed the max
	// raw loss the model can produce (~2.3 → grad-upper ~3.5).
	var maxIV float64
	for i := 0; i < smallSpec().NumSamples; i++ {
		if v := job.Tracker().Value(dataset.SampleID(i)); v > maxIV {
			maxIV = v
		}
	}
	if maxIV <= 2.3 {
		t.Fatalf("grad-upper max IV %g not above raw-loss range", maxIV)
	}
}

package faults

import (
	"fmt"
	"time"

	"icache/internal/dataset"
)

// Fetcher is the byte-source contract the TCP cache server consumes
// (rpc.ByteSource): storage.DataSource and storage.FileSource satisfy it.
type Fetcher interface {
	Spec() dataset.Spec
	Fetch(id dataset.SampleID) ([]byte, error)
}

// Source wraps a Fetcher and consults an Injector (operation
// OpSourceFetch) before every Fetch. ActError and ActDrop fail the fetch;
// ActDelay sleeps wall time first; ActCorrupt flips one payload byte.
type Source struct {
	inner Fetcher
	inj   *Injector
}

// WrapSource attaches an injector to a byte source. A nil injector returns
// a transparent wrapper.
func WrapSource(inner Fetcher, inj *Injector) *Source {
	return &Source{inner: inner, inj: inj}
}

// Spec returns the dataset the wrapped source serves.
func (s *Source) Spec() dataset.Spec { return s.inner.Spec() }

// Fetch applies the fault schedule, then delegates.
func (s *Source) Fetch(id dataset.SampleID) ([]byte, error) {
	switch d := s.inj.Decide(OpSourceFetch); d.Action {
	case ActError, ActDrop:
		return nil, fmt.Errorf("faults: fetch sample %d: %w", id, d.Err)
	case ActDelay:
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
	case ActCorrupt:
		payload, err := s.inner.Fetch(id)
		if err != nil {
			return nil, err
		}
		q := append([]byte(nil), payload...)
		if len(q) > 0 {
			q[len(q)/2] ^= 0xA5
		}
		return q, nil
	}
	return s.inner.Fetch(id)
}

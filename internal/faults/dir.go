package faults

import (
	"fmt"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/simclock"
)

// Dir wraps any dkv.Service (the in-process dkv.Local, a network
// dkv.DirClient, a single replica of a partitioned directory, ...) with the
// fault schedule. Operations consult the injector under OpDirLookup /
// OpDirClaim / OpDirRelease; Len is never faulted (it is an observability
// call, not part of the data path).
//
// When a Clock is installed, decisions are virtual-time keyed (DecideAt),
// which lets schedules express "partition the directory for epoch 3".
//
// Dir composes per replica: wrapping each replica of a sharded directory
// with WrapDirScoped gives every wrapper its own operation namespace
// (ScopedOp: "dir.lookup@r1", ...), so a partition rule can blind exactly
// one replica while the others keep serving — and so each wrapper's call
// counters advance independently, keeping stride-based rules on one replica
// unaffected by traffic to its siblings. Unscoped wrappers keep the legacy
// shared namespace.
type Dir struct {
	inner dkv.Service
	inj   *Injector
	scope string

	// Clock, when non-nil, supplies the virtual time for time-keyed rules.
	Clock func() simclock.Time
}

// WrapDir attaches an injector to a directory service.
func WrapDir(inner dkv.Service, inj *Injector) *Dir {
	return &Dir{inner: inner, inj: inj}
}

// WrapDirScoped attaches an injector under a scoped operation namespace:
// every gate consults ScopedOp(op, scope) instead of the bare op. Use one
// distinct scope per replica of a partitioned directory.
func WrapDirScoped(inner dkv.Service, inj *Injector, scope string) *Dir {
	return &Dir{inner: inner, inj: inj, scope: scope}
}

// ScopedOp is the operation name a scoped wrapper consults: "op@scope"
// (the bare op when scope is empty). Rules targeting one replica use it:
//
//	faults.Partition(faults.ScopedOp(faults.OpDirLookup, "r1"), from, until, nil)
func ScopedOp(op, scope string) string {
	if scope == "" {
		return op
	}
	return op + "@" + scope
}

func (d *Dir) decide(op string) Decision {
	op = ScopedOp(op, d.scope)
	if d.Clock != nil {
		return d.inj.DecideAt(op, d.Clock())
	}
	return d.inj.Decide(op)
}

func (d *Dir) gate(op string) error {
	switch dec := d.decide(op); dec.Action {
	case ActError, ActDrop:
		return fmt.Errorf("faults: %s: %w", op, dec.Err)
	case ActDelay:
		if dec.Delay > 0 {
			time.Sleep(dec.Delay)
		}
	}
	return nil
}

// Lookup reports which node owns id, if any.
func (d *Dir) Lookup(id dataset.SampleID) (dkv.NodeID, bool, error) {
	if err := d.gate(OpDirLookup); err != nil {
		return 0, false, err
	}
	return d.inner.Lookup(id)
}

// LookupBatch resolves many ids in one directory operation. The whole batch
// is gated ONCE under OpDirLookup — it models one wire round trip, so a
// fault schedule that errors every Nth lookup fails the entire batch, just
// as a dropped frame would fail every id it carried.
func (d *Dir) LookupBatch(ids []dataset.SampleID) ([]dkv.Owner, error) {
	if err := d.gate(OpDirLookup); err != nil {
		return nil, err
	}
	return d.inner.LookupBatch(ids)
}

// Claim registers node as the owner of id (first claim wins).
func (d *Dir) Claim(id dataset.SampleID, node dkv.NodeID) (bool, error) {
	if err := d.gate(OpDirClaim); err != nil {
		return false, err
	}
	return d.inner.Claim(id, node)
}

// Release removes node's ownership of id.
func (d *Dir) Release(id dataset.SampleID, node dkv.NodeID) (bool, error) {
	if err := d.gate(OpDirRelease); err != nil {
		return false, err
	}
	return d.inner.Release(id, node)
}

// Len reports the number of owned items (never faulted).
func (d *Dir) Len() (int, error) { return d.inner.Len() }

// Register grants node a lease (faulted under OpDirRegister: a partitioned
// node cannot re-register until the partition heals).
func (d *Dir) Register(node dkv.NodeID, ttl time.Duration) (dkv.NodeInfo, error) {
	if err := d.gate(OpDirRegister); err != nil {
		return dkv.NodeInfo{}, err
	}
	return d.inner.Register(node, ttl)
}

// Heartbeat renews node's lease (faulted under OpDirHeartbeat: dropping
// heartbeats is how a chaos schedule expires a healthy node's lease).
func (d *Dir) Heartbeat(node dkv.NodeID) (bool, error) {
	if err := d.gate(OpDirHeartbeat); err != nil {
		return false, err
	}
	return d.inner.Heartbeat(node)
}

// ListNodes reports membership state (faulted under OpDirScan).
func (d *Dir) ListNodes() ([]dkv.NodeInfo, error) {
	if err := d.gate(OpDirScan); err != nil {
		return nil, err
	}
	return d.inner.ListNodes()
}

// OwnedBy reports node's directory entries (faulted under OpDirScan).
func (d *Dir) OwnedBy(node dkv.NodeID, max int) ([]dataset.SampleID, error) {
	if err := d.gate(OpDirScan); err != nil {
		return nil, err
	}
	return d.inner.OwnedBy(node, max)
}

// PurgeDead garbage-collects Dead-owned entries (faulted under OpDirScan).
func (d *Dir) PurgeDead(max int) (int, error) {
	if err := d.gate(OpDirScan); err != nil {
		return 0, err
	}
	return d.inner.PurgeDead(max)
}

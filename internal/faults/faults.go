// Package faults is the deterministic chaos substrate of the repository: a
// seeded, composable fault injector that the network layer (net.Conn), the
// byte sources (storage.DataSource), the simulated backend (storage.Backend)
// and the distributed directory (dkv) all consult before doing real work.
//
// A single Injector holds an ordered list of Rules. Every fallible operation
// names itself with an Op string ("conn.read", "dir.lookup", ...) and asks
// the injector for a Decision; the first rule that matches the operation —
// by call count, virtual-time window, stride, and probability — fires and
// dictates the outcome: an injected error, an added delay, a corrupted
// frame, or a dropped connection.
//
// Everything is keyed off one seeded PRNG plus monotone counters, so a chaos
// schedule replays identically under the same seed: the chaos suites in
// internal/icache and internal/rpc rely on that to assert that a faulted
// training run loses no samples relative to a fault-free run.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"icache/internal/simclock"
)

// Operation names used by the built-in wrappers. Rules with Op=="" match
// every operation.
const (
	OpConnRead     = "conn.read"     // faults.Conn read path
	OpConnWrite    = "conn.write"    // faults.Conn write path
	OpSourceFetch  = "source.fetch"  // storage.DataSource / faults.Source
	OpDirLookup    = "dir.lookup"    // directory lookups (dkv or simulated)
	OpDirClaim     = "dir.claim"     // directory claims
	OpDirRelease   = "dir.release"   // directory releases
	OpDirRegister  = "dir.register"  // membership lease registrations
	OpDirHeartbeat = "dir.heartbeat" // membership lease renewals
	OpDirScan      = "dir.scan"      // membership scans (ListNodes/OwnedBy/PurgeDead)
	OpPeerRead     = "peer.read"     // remote-cache reads between nodes
	OpBackendRead  = "backend.read"  // simulated backend sample/package reads
)

// ErrInjected is the default error carried by error/drop decisions that do
// not specify their own.
var ErrInjected = errors.New("faults: injected fault")

// Action is the outcome class of a fired rule.
type Action uint8

const (
	// ActNone means the operation proceeds untouched.
	ActNone Action = iota
	// ActError makes the operation return an error without running.
	ActError
	// ActDelay lets the operation run after (virtual or wall) delay.
	ActDelay
	// ActCorrupt lets the operation run, then flips bytes in its payload
	// (only meaningful for conn reads/writes).
	ActCorrupt
	// ActDrop tears down the underlying connection (conn wrappers) or acts
	// like ActError elsewhere.
	ActDrop
)

func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActError:
		return "error"
	case ActDelay:
		return "delay"
	case ActCorrupt:
		return "corrupt"
	case ActDrop:
		return "drop"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Decision is what an operation must do. The zero value means "proceed".
type Decision struct {
	Action Action
	Err    error
	Delay  time.Duration
}

// Fault reports whether the decision perturbs the operation at all.
func (d Decision) Fault() bool { return d.Action != ActNone }

// Rule describes one fault schedule entry. All set constraints must hold
// for the rule to match; unset (zero) constraints are ignored.
type Rule struct {
	// Op restricts the rule to one operation name ("" matches all).
	Op string
	// From/Until bound the per-op call index (0-based) half-open window
	// [From, Until). Until <= 0 leaves the window open-ended.
	From, Until int64
	// FromTime/UntilTime bound the virtual time passed to DecideAt in the
	// half-open window [FromTime, UntilTime). The window is only consulted
	// when at least one bound is positive; calls made through Decide (no
	// virtual clock) never match a time-bounded rule.
	FromTime, UntilTime simclock.Time
	// Every fires the rule on every Nth matching call (1 or 0 = every call).
	Every int64
	// Prob gates firing on a seeded coin flip; <= 0 or >= 1 means always.
	Prob float64
	// Count caps the number of fires; <= 0 means unlimited.
	Count int64

	// Action, Err and Delay define the injected outcome. A zero Action with
	// a non-nil Err is promoted to ActError; a zero Action with a positive
	// Delay is promoted to ActDelay.
	Action Action
	Err    error
	Delay  time.Duration
}

// normalized resolves the Action promotion rules.
func (r Rule) normalized() Rule {
	if r.Action == ActNone {
		switch {
		case r.Err != nil:
			r.Action = ActError
		case r.Delay > 0:
			r.Action = ActDelay
		}
	}
	if (r.Action == ActError || r.Action == ActDrop) && r.Err == nil {
		r.Err = ErrInjected
	}
	return r
}

// rule is a Rule plus its firing state.
type rule struct {
	Rule
	seen  int64 // calls that matched every static constraint
	fired int64
}

// Injector is a seeded, composable fault schedule. The zero value is not
// usable; build one with New. All methods are safe for concurrent use, and
// a nil *Injector is inert (every Decide returns a zero Decision), so
// wrapped components need no nil checks at call sites.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*rule
	calls map[string]int64
	fired map[string]int64
}

// New returns an empty injector whose probabilistic rules draw from a PRNG
// seeded with seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		calls: make(map[string]int64),
		fired: make(map[string]int64),
	}
}

// Add appends a rule to the schedule and returns the injector for chaining.
// Rules are consulted in insertion order; the first that fires wins.
func (in *Injector) Add(rules ...Rule) *Injector {
	if in == nil {
		panic("faults: Add on nil Injector")
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range rules {
		rc := r.normalized()
		in.rules = append(in.rules, &rule{Rule: rc})
	}
	return in
}

// Decide evaluates the schedule for one call of op with no virtual-time
// context (time-bounded rules never match).
func (in *Injector) Decide(op string) Decision { return in.decide(op, -1) }

// DecideAt evaluates the schedule for one call of op occurring at virtual
// time at.
func (in *Injector) DecideAt(op string, at simclock.Time) Decision {
	if at < 0 {
		at = 0
	}
	return in.decide(op, at)
}

func (in *Injector) decide(op string, at simclock.Time) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	idx := in.calls[op]
	in.calls[op]++
	for _, r := range in.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if idx < r.From || (r.Until > 0 && idx >= r.Until) {
			continue
		}
		if r.FromTime > 0 || r.UntilTime > 0 {
			if at < 0 {
				continue // no virtual clock on this call path
			}
			if at < r.FromTime || (r.UntilTime > 0 && at >= r.UntilTime) {
				continue
			}
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		seen := r.seen
		r.seen++
		if r.Every > 1 && seen%r.Every != 0 {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		in.fired[op]++
		return Decision{Action: r.Action, Err: r.Err, Delay: r.Delay}
	}
	return Decision{}
}

// Calls reports how many decisions have been requested for op.
func (in *Injector) Calls(op string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[op]
}

// Fired reports how many faults have been injected for op.
func (in *Injector) Fired(op string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[op]
}

// TotalFired reports the number of injected faults across all operations.
func (in *Injector) TotalFired() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.fired {
		n += v
	}
	return n
}

// Reset clears call counters and firing state but keeps the rule schedule
// and the PRNG position.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls = make(map[string]int64)
	in.fired = make(map[string]int64)
	for _, r := range in.rules {
		r.seen, r.fired = 0, 0
	}
}

// FailN reproduces the legacy storage.DataSource.FailNext contract: the next
// n calls of op return err (ErrInjected when err is nil).
func FailN(op string, n int, err error) Rule {
	if n <= 0 {
		// A zero-count request must never fire (Count <= 0 means unlimited,
		// so an unreachable call window expresses "off").
		return Rule{Op: op, From: 1 << 62, Action: ActError, Err: err}
	}
	return Rule{Op: op, Count: int64(n), Action: ActError, Err: err}
}

// Partition makes every call of op inside the virtual-time window
// [from, until) fail with err — the building block for "the directory is
// unreachable for epoch k" schedules.
func Partition(op string, from, until simclock.Time, err error) Rule {
	return Rule{Op: op, FromTime: from, UntilTime: until, Action: ActError, Err: err}
}

// DropEvery tears down the connection on every nth call of op.
func DropEvery(op string, n int64) Rule {
	return Rule{Op: op, Every: n, Action: ActDrop}
}

// DelayEvery adds d of latency on every nth call of op.
func DelayEvery(op string, n int64, d time.Duration) Rule {
	return Rule{Op: op, Every: n, Action: ActDelay, Delay: d}
}

// CorruptEvery flips payload bytes on every nth call of op.
func CorruptEvery(op string, n int64) Rule {
	return Rule{Op: op, Every: n, Action: ActCorrupt}
}

// ErrorProb fails op with err with the given probability per call.
func ErrorProb(op string, p float64, err error) Rule {
	return Rule{Op: op, Prob: p, Action: ActError, Err: err}
}

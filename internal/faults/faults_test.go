package faults

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/simclock"
	"icache/internal/wire"
)

func TestFailNFiresExactlyN(t *testing.T) {
	boom := errors.New("boom")
	in := New(1).Add(FailN("op", 3, boom))
	for i := 0; i < 3; i++ {
		d := in.Decide("op")
		if d.Action != ActError || !errors.Is(d.Err, boom) {
			t.Fatalf("call %d: decision %+v, want error boom", i, d)
		}
	}
	if d := in.Decide("op"); d.Fault() {
		t.Fatalf("4th call faulted: %+v", d)
	}
	if got := in.Fired("op"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
	if got := in.Calls("op"); got != 4 {
		t.Fatalf("Calls = %d, want 4", got)
	}
}

func TestFailNZeroNeverFires(t *testing.T) {
	in := New(1).Add(FailN("op", 0, errors.New("x")))
	for i := 0; i < 10; i++ {
		if in.Decide("op").Fault() {
			t.Fatal("FailN(0) fired")
		}
	}
}

func TestCallCountWindow(t *testing.T) {
	in := New(1).Add(Rule{Op: "op", From: 2, Until: 4, Action: ActError})
	var pattern []bool
	for i := 0; i < 6; i++ {
		pattern = append(pattern, in.Decide("op").Fault())
	}
	want := []bool{false, false, true, true, false, false}
	if !reflect.DeepEqual(pattern, want) {
		t.Fatalf("window pattern %v, want %v", pattern, want)
	}
}

func TestVirtualTimeWindow(t *testing.T) {
	in := New(1).Add(Partition("dir.lookup", 100*time.Millisecond, 200*time.Millisecond, nil))
	cases := []struct {
		at   time.Duration
		want bool
	}{
		{0, false}, {99 * time.Millisecond, false},
		{100 * time.Millisecond, true}, {150 * time.Millisecond, true},
		{199 * time.Millisecond, true}, {200 * time.Millisecond, false},
	}
	for _, c := range cases {
		if got := in.DecideAt("dir.lookup", c.at).Fault(); got != c.want {
			t.Fatalf("at %v: fault=%v, want %v", c.at, got, c.want)
		}
	}
	// A call with no virtual clock must never match a time-bounded rule.
	if in.Decide("dir.lookup").Fault() {
		t.Fatal("time-bounded rule fired without a clock")
	}
}

func TestEveryStride(t *testing.T) {
	in := New(1).Add(DropEvery("conn.read", 3))
	var fired int
	for i := 0; i < 9; i++ {
		if in.Decide("conn.read").Fault() {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d of 9 with Every=3, want 3", fired)
	}
}

func TestProbDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed).Add(ErrorProb("op", 0.5, nil))
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.Decide("op").Fault())
		}
		return out
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if c := run(8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical 64-call schedules (suspicious)")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	in := New(1).Add(
		Rule{Op: "op", Action: ActError, Err: errA, Count: 1},
		Rule{Op: "op", Action: ActError, Err: errB},
	)
	if d := in.Decide("op"); !errors.Is(d.Err, errA) {
		t.Fatalf("first call got %v, want a", d.Err)
	}
	if d := in.Decide("op"); !errors.Is(d.Err, errB) {
		t.Fatalf("second call got %v, want b (first rule exhausted)", d.Err)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Decide("op").Fault() || in.DecideAt("op", time.Second).Fault() {
		t.Fatal("nil injector fired")
	}
	if in.Calls("op") != 0 || in.Fired("op") != 0 || in.TotalFired() != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestResetClearsStateKeepsRules(t *testing.T) {
	in := New(1).Add(FailN("op", 1, nil))
	in.Decide("op")
	in.Reset()
	if in.Calls("op") != 0 {
		t.Fatal("Reset kept call counters")
	}
	if d := in.Decide("op"); !d.Fault() {
		t.Fatal("rule did not re-arm after Reset")
	}
}

// TestConnDropSeversBothEnds verifies ActDrop closes the wrapped socket so
// the remote side observes the failure too — the chaos building block for
// "kill this peer connection".
func TestConnDropSeversBothEnds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// WriteFrame makes two writes (header+payload); drop on the 3rd write,
	// i.e. the second frame's header.
	in := New(1).Add(Rule{Op: OpConnWrite, From: 2, Action: ActDrop})
	conn := WrapConn(raw, in)
	if err := wire.WriteFrame(conn, []byte("ok")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := wire.WriteFrame(conn, []byte("ok")); err == nil {
		t.Fatal("dropped write succeeded")
	}
	srv := <-accepted
	defer srv.Close()
	if _, err := wire.ReadFrame(srv); err != nil {
		t.Fatalf("first frame should arrive intact: %v", err)
	}
	srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadFrame(srv); err == nil {
		t.Fatal("server read succeeded after connection drop")
	}
}

// TestConnCorruptDetectedByFraming flips a byte mid-frame and checks the
// receiver either errors or sees a different payload — never silently the
// original bytes.
func TestConnCorruptDetectedByFraming(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	in := New(1).Add(CorruptEvery(OpConnWrite, 1))
	wc := WrapConn(client, in)
	payload := []byte("the quick brown fox")
	go func() { _ = wire.WriteFrame(wc, payload) }()
	server.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
	got, err := wire.ReadFrame(server)
	if err == nil && reflect.DeepEqual(got, payload) {
		t.Fatal("corrupted frame arrived intact")
	}
}

// TestWrapDirFaultsOps verifies the directory wrapper gates each operation
// on its own op name and leaves Len unfaulted.
func TestWrapDirFaultsOps(t *testing.T) {
	raw := dkv.NewDirectory()
	in := New(1).Add(FailN(OpDirClaim, 1, nil))
	dir := WrapDir(dkv.Local{Dir: raw}, in)

	if _, err := dir.Claim(7, 1); err == nil {
		t.Fatal("first claim should be faulted")
	}
	if ok, err := dir.Claim(7, 1); err != nil || !ok {
		t.Fatalf("second claim = (%v,%v), want success", ok, err)
	}
	if owner, ok, err := dir.Lookup(7); err != nil || !ok || owner != 1 {
		t.Fatalf("lookup = (%v,%v,%v)", owner, ok, err)
	}
	if n, err := dir.Len(); err != nil || n != 1 {
		t.Fatalf("len = (%d,%v), want 1", n, err)
	}
}

// TestWrapDirVirtualClock verifies time-keyed rules consult the installed
// clock.
func TestWrapDirVirtualClock(t *testing.T) {
	raw := dkv.NewDirectory()
	in := New(1).Add(Partition(OpDirLookup, time.Second, 2*time.Second, nil))
	dir := WrapDir(dkv.Local{Dir: raw}, in)
	now := time.Duration(0)
	dir.Clock = func() simclock.Time { return now }

	if _, _, err := dir.Lookup(1); err != nil {
		t.Fatalf("lookup before partition: %v", err)
	}
	now = 1500 * time.Millisecond
	if _, _, err := dir.Lookup(1); err == nil {
		t.Fatal("lookup inside partition succeeded")
	}
	now = 2 * time.Second
	if _, _, err := dir.Lookup(1); err != nil {
		t.Fatalf("lookup after partition: %v", err)
	}
}

// TestScopedPartitionBlindsOneReplica is the per-replica composition
// regression test: three replicas of a partitioned directory each sit
// behind their own scoped wrapper sharing one injector, and a partition
// rule keyed on ScopedOp(OpDirLookup, "r1") blinds EXACTLY replica 1 —
// the siblings keep serving, the sharded client fails replica 1's shards
// over without surfacing an error, and each wrapper's call counters
// advance independently.
func TestScopedPartitionBlindsOneReplica(t *testing.T) {
	var now simclock.Time
	clock := func() simclock.Time { return now }
	const from, until = 100 * time.Millisecond, 200 * time.Millisecond
	inj := New(7).Add(Partition(ScopedOp(OpDirLookup, "r1"), from, until, nil))

	replicas := make(map[dkv.ReplicaID]dkv.Service, 3)
	wrappers := make([]*Dir, 3)
	for r := 0; r < 3; r++ {
		w := WrapDirScoped(dkv.Local{Dir: dkv.NewDirectory()}, inj, "r"+string(rune('0'+r)))
		w.Clock = clock
		wrappers[r] = w
		replicas[dkv.ReplicaID(r)] = w
	}
	s := dkv.NewShardedDir(replicas, dkv.ShardedConfig{FailoverTTL: time.Minute, Clock: clock})

	// Healthy phase: claim keys through the sharded client and note which
	// shard each landed on.
	view := s.View()
	byReplica := map[dkv.ReplicaID][]dataset.SampleID{}
	for id := dataset.SampleID(0); id < 120; id++ {
		if ok, err := s.Claim(id, 1); err != nil || !ok {
			t.Fatalf("claim(%d): %v/%v", id, ok, err)
		}
		r, _ := view.Owner(id)
		byReplica[r] = append(byReplica[r], id)
	}
	if len(byReplica[1]) == 0 {
		t.Fatal("replica 1 owns no shard keys — test premise broken")
	}

	// Inside the window replica 1 is blind; its siblings are not.
	now = simclock.Time(150 * time.Millisecond)
	if _, _, err := wrappers[1].Lookup(byReplica[1][0]); err == nil {
		t.Fatal("partitioned replica 1 answered a lookup")
	}
	for _, r := range []int{0, 2} {
		if _, found, err := wrappers[r].Lookup(byReplica[dkv.ReplicaID(r)][0]); err != nil || !found {
			t.Fatalf("unpartitioned replica %d: found=%v err=%v", r, found, err)
		}
	}

	// The sharded client absorbs the partition: every key still answers
	// without error; replica 1's shards fail over to survivors (which never
	// saw those claims, so clean "unowned").
	for r, ids := range byReplica {
		for _, id := range ids {
			_, found, err := s.Lookup(id)
			if err != nil {
				t.Fatalf("sharded lookup(%d) during partition: %v", id, err)
			}
			if want := r != 1; found != want {
				t.Fatalf("sharded lookup(%d) on replica %d: found=%v, want %v", id, r, found, want)
			}
		}
	}
	if st := s.Ring(); st.LiveReplicas != 2 || st.Failovers < 1 {
		t.Fatalf("ring stats during one-replica partition: %+v", st)
	}

	// The rule fired only under replica 1's scope, and each wrapper's call
	// counters advanced independently of its siblings.
	if inj.Fired(ScopedOp(OpDirLookup, "r1")) == 0 {
		t.Error("partition rule never fired under scope r1")
	}
	for _, scope := range []string{"r0", "r2"} {
		if got := inj.Fired(ScopedOp(OpDirLookup, scope)); got != 0 {
			t.Errorf("scope %s fired %d faults, want 0", scope, got)
		}
		if inj.Calls(ScopedOp(OpDirLookup, scope)) == 0 {
			t.Errorf("scope %s recorded no calls", scope)
		}
	}
	if c0, c1 := inj.Calls(ScopedOp(OpDirLookup, "r0")), inj.Calls(ScopedOp(OpDirLookup, "r1")); c0 == c1 {
		t.Errorf("scoped call counters did not advance independently: r0=%d r1=%d", c0, c1)
	}
}

package faults

import (
	"fmt"
	"net"
	"time"
)

// Conn wraps a net.Conn and consults an Injector on every Read and Write.
// Supported actions:
//
//   - ActError:   the call fails without touching the socket.
//   - ActDrop:    the underlying connection is closed (both ends observe a
//     reset/EOF) and the call fails — the chaos equivalent of a
//     killed peer.
//   - ActDelay:   the call proceeds after sleeping Delay of wall time.
//   - ActCorrupt: the call proceeds, then one byte of the moved payload is
//     bit-flipped — downstream framing must detect or reject it.
//
// Wrap the client side with WrapConn and the server side with Listener.
type Conn struct {
	net.Conn
	inj *Injector
}

// WrapConn attaches an injector to a connection. A nil injector returns the
// connection unwrapped.
func WrapConn(c net.Conn, inj *Injector) net.Conn {
	if inj == nil {
		return c
	}
	return &Conn{Conn: c, inj: inj}
}

func (c *Conn) Read(p []byte) (int, error) {
	d := c.inj.Decide(OpConnRead)
	if n, err, done := c.apply(d, "read"); done {
		return n, err
	}
	n, err := c.Conn.Read(p)
	if d.Action == ActCorrupt && n > 0 {
		p[n/2] ^= 0xA5
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	d := c.inj.Decide(OpConnWrite)
	if n, err, done := c.apply(d, "write"); done {
		return n, err
	}
	if d.Action == ActCorrupt && len(p) > 0 {
		// Corrupt a copy: callers own p and may retry with it.
		q := append([]byte(nil), p...)
		q[len(q)/2] ^= 0xA5
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

// apply handles the actions common to both directions. done reports whether
// the call is finished (error/drop); delay falls through after sleeping.
func (c *Conn) apply(d Decision, dir string) (int, error, bool) {
	switch d.Action {
	case ActError:
		return 0, fmt.Errorf("faults: conn %s: %w", dir, d.Err), true
	case ActDrop:
		c.Conn.Close()
		return 0, fmt.Errorf("faults: conn %s dropped: %w", dir, d.Err), true
	case ActDelay:
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
	}
	return 0, nil, false
}

// Listener wraps a net.Listener so every accepted connection carries the
// injector. Use it to chaos-test a server without touching its code:
//
//	ln, _ := net.Listen("tcp", "127.0.0.1:0")
//	go srv.Serve(faults.WrapListener(ln, inj))
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener attaches an injector to every accepted connection. A nil
// injector returns the listener unwrapped.
func WrapListener(ln net.Listener, inj *Injector) net.Listener {
	if inj == nil {
		return ln
	}
	return &Listener{Listener: ln, inj: inj}
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.inj), nil
}

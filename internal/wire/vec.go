package wire

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Vec builds one length-prefixed frame as a vector of segments: small
// header runs encoded into an internal scratch buffer, interleaved with
// externally owned payload slices that are referenced, never copied. The
// whole frame is then written with one WriteTo call — net.Buffers on a TCP
// connection turns that into a single writev(2), so a cached payload
// travels from the payload store to the socket with zero copies in user
// space.
//
// Usage:
//
//	v.Reset()
//	v.U8(statusOK); v.U32(n)
//	for each sample { v.I64(id); v.U32(len(p)); v.Payload(p) }
//	v.WriteTo(conn)
//
// The caller owns the lifetime of every Payload slice until WriteTo
// returns: the serving path pins the payload's slab before appending it and
// releases the pin only after the write completes.
//
// A Vec is not safe for concurrent use. The zero value is ready after
// Reset.
type Vec struct {
	// scratch holds the 4-byte length prefix and every header run. Header
	// segments store offsets into scratch (not slices) because appends may
	// reallocate the backing array.
	scratch []byte
	segs    []vecSeg
	bufs    net.Buffers // reused WriteTo assembly
	// wview is the consumable slice header handed to net.Buffers.WriteTo
	// (which advances it and zeroes written elements). It shares bufs's
	// backing array; keeping it as a field lets WriteTo call the
	// pointer-receiver method without a heap-escaping local copy.
	wview net.Buffers
}

// vecSeg is one frame segment: an external payload slice (ext != nil), or
// the scratch range [start, end) when ext is nil.
type vecSeg struct {
	ext        []byte
	start, end int
}

// Reset clears the vector and reserves the 4-byte length prefix.
func (v *Vec) Reset() {
	v.scratch = append(v.scratch[:0], 0, 0, 0, 0)
	v.segs = v.segs[:0]
	v.segs = append(v.segs, vecSeg{start: 0, end: 4})
}

// header returns the open scratch segment, starting a new one if the last
// appended segment was an external payload.
func (v *Vec) header() *vecSeg {
	if len(v.segs) == 0 {
		v.Reset()
	}
	if last := &v.segs[len(v.segs)-1]; last.ext == nil {
		return last
	}
	v.segs = append(v.segs, vecSeg{start: len(v.scratch), end: len(v.scratch)})
	return &v.segs[len(v.segs)-1]
}

// U8 appends one header byte.
func (v *Vec) U8(b byte) {
	s := v.header()
	v.scratch = append(v.scratch, b)
	s.end = len(v.scratch)
}

// U32 appends a big-endian uint32 header field.
func (v *Vec) U32(x uint32) {
	s := v.header()
	v.scratch = append(v.scratch, byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
	s.end = len(v.scratch)
}

// I64 appends a big-endian int64 header field.
func (v *Vec) I64(x int64) {
	s := v.header()
	u := uint64(x)
	v.scratch = append(v.scratch, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	s.end = len(v.scratch)
}

// Str appends a length-prefixed string header field (error responses).
func (v *Vec) Str(s string) {
	v.U32(uint32(len(s)))
	seg := v.header()
	v.scratch = append(v.scratch, s...)
	seg.end = len(v.scratch)
}

// Payload appends an externally owned payload slice by reference. The
// caller must keep p immutable and alive until WriteTo returns. Zero-length
// payloads add no segment (their length was already framed by the caller).
func (v *Vec) Payload(p []byte) {
	if len(p) == 0 {
		return
	}
	v.segs = append(v.segs, vecSeg{ext: p})
}

// Len reports the frame payload length (excluding the 4-byte prefix).
func (v *Vec) Len() int {
	n := 0
	for _, s := range v.segs {
		if s.ext != nil {
			n += len(s.ext)
		} else {
			n += s.end - s.start
		}
	}
	return n - 4
}

// WriteTo patches the length prefix and writes the whole frame with one
// vectored write. On a *net.TCPConn the segments go out as a single
// writev(2); any other writer receives the segments sequentially
// (net.Buffers falls back to per-buffer Write calls). Returns the total
// bytes written. The Vec remains assembled after WriteTo — call Reset to
// reuse it.
func (v *Vec) WriteTo(w io.Writer) (int64, error) {
	n := v.Len()
	if n < 0 {
		return 0, fmt.Errorf("wire: vectored frame written before Reset")
	}
	if n > MaxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	v.scratch[0] = byte(n >> 24)
	v.scratch[1] = byte(n >> 16)
	v.scratch[2] = byte(n >> 8)
	v.scratch[3] = byte(n)
	// Resolve scratch ranges at write time: appends may have reallocated
	// the backing array since the segment was opened.
	v.bufs = v.bufs[:0]
	for _, s := range v.segs {
		if s.ext != nil {
			v.bufs = append(v.bufs, s.ext)
		} else if s.end > s.start {
			v.bufs = append(v.bufs, v.scratch[s.start:s.end:s.end])
		}
	}
	// net.Buffers.WriteTo consumes its receiver (advances the slice header
	// and zeroes written elements), so hand it the consumable view — bufs's
	// own header survives, and the zeroed elements are rewritten on the
	// next assembly pass.
	v.wview = v.bufs
	return v.wview.WriteTo(w)
}

// AppendFlat appends the frame bytes — length prefix included — to dst and
// returns it. It is the reference serialization WriteTo must match
// byte-for-byte; tests and the fuzz harness compare against it.
func (v *Vec) AppendFlat(dst []byte) []byte {
	n := v.Len()
	v.scratch[0] = byte(n >> 24)
	v.scratch[1] = byte(n >> 16)
	v.scratch[2] = byte(n >> 8)
	v.scratch[3] = byte(n)
	for _, s := range v.segs {
		if s.ext != nil {
			dst = append(dst, s.ext...)
		} else {
			dst = append(dst, v.scratch[s.start:s.end]...)
		}
	}
	return dst
}

// Vec pool. The serving path checks a Vec out per response; recycling keeps
// the scratch buffer and segment list warm. Oversized vectors are dropped
// (and counted) with the same rationale as PutBuffer.
var (
	vecPool = sync.Pool{New: func() interface{} {
		atomic.AddInt64(&vecPoolNews, 1)
		return &Vec{scratch: make([]byte, 0, 4096), segs: make([]vecSeg, 0, 64)}
	}}
	vecPoolGets     int64
	vecPoolNews     int64
	vecPoolDiscards int64
)

// maxPooledSegs bounds the segment list a pooled Vec may retain — a
// 1M-sample batch must not pin its segment headers forever.
const maxPooledSegs = 4096

// GetVec returns a reset Vec from the pool.
func GetVec() *Vec {
	atomic.AddInt64(&vecPoolGets, 1)
	v := vecPool.Get().(*Vec)
	v.Reset()
	return v
}

// PutVec recycles a Vec. The caller must not touch it (or the frame it
// described) afterwards. External payload references are dropped so the
// pool never prolongs a payload's lifetime.
func PutVec(v *Vec) {
	if v == nil {
		return
	}
	if cap(v.scratch) > maxPooledCap || cap(v.segs) > maxPooledSegs {
		atomic.AddInt64(&vecPoolDiscards, 1)
		return
	}
	for i := range v.segs {
		v.segs[i].ext = nil
	}
	v.segs = v.segs[:0]
	for i := range v.bufs {
		v.bufs[i] = nil
	}
	v.bufs = v.bufs[:0]
	v.wview = nil
	v.scratch = v.scratch[:0]
	vecPool.Put(v)
}

// VecPoolStats reports (gets, news, discards) for the Vec pool, mirroring
// PoolStats.
func VecPoolStats() (gets, news, discards int64) {
	return atomic.LoadInt64(&vecPoolGets), atomic.LoadInt64(&vecPoolNews), atomic.LoadInt64(&vecPoolDiscards)
}

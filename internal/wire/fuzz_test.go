package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame ensures arbitrary byte streams never panic the framer and
// never yield a frame larger than announced.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 3, 'a', 'b', 'c'})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Fuzz(func(t *testing.T, in []byte) {
		payload, err := ReadFrame(bytes.NewReader(in))
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("frame of %d bytes accepted", len(payload))
		}
		// A successfully read frame must round-trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFrame(&buf)
		if err != nil || !bytes.Equal(again, payload) {
			t.Fatal("round trip diverged")
		}
	})
}

// FuzzVec drives the vectored batch-response framing with arbitrary
// segment structures: the fuzz input is decoded into a list of payloads
// (interleaving empty and non-empty ones), framed through Vec, and checked
// three ways — WriteTo must emit exactly AppendFlat's bytes, the frame must
// read back through ReadFrame, and truncating the stream at any segment
// (iovec) boundary must produce a clean error, never a panic or a phantom
// frame. Seeds cover zero-length payloads and cuts exactly on the
// header/payload boundaries a writev would schedule.
func FuzzVec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})                             // zero samples
	f.Add([]byte{1, 0})                          // one zero-length payload
	f.Add([]byte{3, 0, 0, 0})                    // three zero-length payloads
	f.Add([]byte{2, 3, 'a', 'b', 'c', 0})        // payload then empty
	f.Add([]byte{1, 5, 'h', 'e', 'l', 'l', 'o'}) // single payload
	f.Add([]byte{2, 1, 'x', 255, 'y', 'z'})      // length runs past input (clamped)
	f.Add(bytes.Repeat([]byte{4, 9}, 40))        // many mid-size segments
	f.Fuzz(func(t *testing.T, in []byte) {
		// Decode the input into payload slices: count byte, then per
		// payload a length byte followed by that many bytes (clamped to
		// what remains).
		var payloads [][]byte
		if len(in) > 0 {
			n := int(in[0]) % 32
			rest := in[1:]
			for i := 0; i < n && len(rest) > 0; i++ {
				l := int(rest[0])
				rest = rest[1:]
				if l > len(rest) {
					l = len(rest)
				}
				payloads = append(payloads, rest[:l:l])
				rest = rest[l:]
			}
		}

		var v Vec
		v.Reset()
		v.U8(0)
		v.U32(uint32(len(payloads)))
		for i, p := range payloads {
			v.I64(int64(i))
			v.U32(uint32(len(p)))
			v.Payload(p)
		}

		var e Buffer
		e.U8(0)
		e.U32(uint32(len(payloads)))
		for i, p := range payloads {
			e.I64(int64(i))
			e.U32(uint32(len(p)))
			e.B = append(e.B, p...)
		}
		var wantBuf bytes.Buffer
		if err := WriteFrame(&wantBuf, e.B); err != nil {
			t.Fatal(err)
		}
		want := wantBuf.Bytes()

		if got := v.AppendFlat(nil); !bytes.Equal(got, want) {
			t.Fatal("AppendFlat diverged from scalar encoding")
		}
		var sink bytes.Buffer
		if n, err := v.WriteTo(&sink); err != nil || n != int64(len(want)) {
			t.Fatalf("WriteTo: n=%d err=%v", n, err)
		}
		if !bytes.Equal(sink.Bytes(), want) {
			t.Fatal("WriteTo diverged from scalar encoding")
		}

		// Truncate at every segment boundary the vectored writer would
		// schedule (header runs and payload slices): the reader must fail
		// cleanly on every prefix shorter than the frame.
		cut := 0
		for _, seg := range v.segs {
			segLen := seg.end - seg.start
			if seg.ext != nil {
				segLen = len(seg.ext)
			}
			cut += segLen
			if cut >= len(want) {
				break
			}
			if _, err := ReadFrame(bytes.NewReader(want[:cut])); err == nil {
				t.Fatalf("truncation at iovec boundary %d decoded without error", cut)
			}
		}
		if p, err := ReadFrame(bytes.NewReader(want)); err != nil || !bytes.Equal(p, e.B) {
			t.Fatal("full frame failed to read back")
		}
	})
}

// FuzzReader ensures the decoder never panics or reads out of bounds on
// arbitrary payloads.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, in []byte) {
		d := NewReader(in)
		_ = d.U8()
		_ = d.U32()
		_ = d.I64()
		_ = d.F64()
		_ = d.Str()
		_ = d.BytesField()
		if d.Off > len(in) {
			t.Fatalf("decoder overran: off %d of %d", d.Off, len(in))
		}
	})
}

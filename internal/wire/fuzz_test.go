package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame ensures arbitrary byte streams never panic the framer and
// never yield a frame larger than announced.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 3, 'a', 'b', 'c'})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Fuzz(func(t *testing.T, in []byte) {
		payload, err := ReadFrame(bytes.NewReader(in))
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("frame of %d bytes accepted", len(payload))
		}
		// A successfully read frame must round-trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFrame(&buf)
		if err != nil || !bytes.Equal(again, payload) {
			t.Fatal("round trip diverged")
		}
	})
}

// FuzzReader ensures the decoder never panics or reads out of bounds on
// arbitrary payloads.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, in []byte) {
		d := NewReader(in)
		_ = d.U8()
		_ = d.U32()
		_ = d.I64()
		_ = d.F64()
		_ = d.Str()
		_ = d.BytesField()
		if d.Off > len(in) {
			t.Fatalf("decoder overran: off %d of %d", d.Off, len(in))
		}
	})
}

package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip: %q", got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty frame decoded to %d bytes", len(got))
	}
}

func TestWriteFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame written")
	}
}

func TestReadFrameOversizedHeader(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(buf); err == nil {
		t.Fatal("4 GB header accepted")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0, 0, 0, 10, 'x'})
	if _, err := ReadFrame(buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var e Buffer
	e.U8(7)
	e.U32(1 << 30)
	e.I64(-42)
	e.F64(math.Pi)
	e.Str("hello")
	e.Bytes([]byte{1, 2, 3})

	d := NewReader(e.B)
	if d.U8() != 7 || d.U32() != 1<<30 || d.I64() != -42 {
		t.Fatal("scalar round trip failed")
	}
	if d.F64() != math.Pi {
		t.Fatal("float round trip failed")
	}
	if d.Str() != "hello" {
		t.Fatal("string round trip failed")
	}
	if b := d.BytesField(); len(b) != 3 || b[2] != 3 {
		t.Fatal("bytes round trip failed")
	}
	if d.Err != nil {
		t.Fatal(d.Err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewReader([]byte{1})
	_ = d.U32() // short: sets Err
	if d.Err == nil {
		t.Fatal("short read did not error")
	}
	if d.U8() != 0 || d.I64() != 0 || d.Str() != "" {
		t.Fatal("decoder produced values after error")
	}
}

// Property: any sequence of scalar writes decodes back identically.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type op struct {
			kind int
			i    int64
			f    float64
			s    string
		}
		var ops []op
		var e Buffer
		for k := 0; k < 50; k++ {
			o := op{kind: rng.Intn(4), i: rng.Int63() - rng.Int63(), f: rng.NormFloat64()}
			o.s = string(rune('a' + rng.Intn(26)))
			switch o.kind {
			case 0:
				e.U32(uint32(o.i))
			case 1:
				e.I64(o.i)
			case 2:
				e.F64(o.f)
			case 3:
				e.Str(o.s)
			}
			ops = append(ops, o)
		}
		d := NewReader(e.B)
		for _, o := range ops {
			switch o.kind {
			case 0:
				if d.U32() != uint32(o.i) {
					return false
				}
			case 1:
				if d.I64() != o.i {
					return false
				}
			case 2:
				if d.F64() != o.f {
					return false
				}
			case 3:
				if d.Str() != o.s {
					return false
				}
			}
		}
		return d.Err == nil && d.Off == len(d.B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

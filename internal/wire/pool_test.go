package wire

import (
	"bytes"
	"io"
	"testing"
)

func TestReadFrameIntoReusesBuffer(t *testing.T) {
	var netBuf bytes.Buffer
	payload := []byte("hello, frame")
	if err := WriteFrame(&netBuf, payload); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 0, 64)
	got, err := ReadFrameInto(&netBuf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("ReadFrameInto did not reuse the provided buffer")
	}
}

func TestReadFrameIntoGrowsWhenSmall(t *testing.T) {
	var netBuf bytes.Buffer
	payload := bytes.Repeat([]byte{0xAB}, 256)
	if err := WriteFrame(&netBuf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrameInto(&netBuf, make([]byte, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after growth")
	}
}

func TestReadFrameIntoNilBuf(t *testing.T) {
	var netBuf bytes.Buffer
	if err := WriteFrame(&netBuf, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrameInto(&netBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("payload mismatch: %v", got)
	}
}

func TestReadFrameIntoTruncated(t *testing.T) {
	var netBuf bytes.Buffer
	if err := WriteFrame(&netBuf, []byte("full frame")); err != nil {
		t.Fatal(err)
	}
	trunc := netBuf.Bytes()[:netBuf.Len()-3]
	if _, err := ReadFrameInto(bytes.NewReader(trunc), make([]byte, 0, 64)); err == nil {
		t.Fatal("truncated frame decoded without error")
	} else if err != io.ErrUnexpectedEOF {
		// Accept any error, but the usual one is ErrUnexpectedEOF; log for
		// visibility if the io layer changes.
		t.Logf("truncated frame error: %v", err)
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := GetBuffer()
	if len(b.B) != 0 {
		t.Fatalf("pooled buffer not reset: len=%d", len(b.B))
	}
	b.U8(7)
	b.Str("payload")
	PutBuffer(b)
	// A fresh checkout must come back empty even if it is the same buffer.
	b2 := GetBuffer()
	defer PutBuffer(b2)
	if len(b2.B) != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", len(b2.B))
	}
	gets, news, _ := PoolStats()
	if gets < 2 || news < 1 || news > gets {
		t.Fatalf("implausible pool stats: gets=%d news=%d", gets, news)
	}
}

func TestPutBufferDropsJumbo(t *testing.T) {
	_, _, d0 := PoolStats()
	b := &Buffer{B: make([]byte, 0, 2<<20)}
	PutBuffer(b) // must not panic, must not retain
	if _, _, d := PoolStats(); d != d0+1 {
		t.Fatalf("jumbo return not counted as a discard: %d -> %d", d0, d)
	}
	PutBuffer(nil)
	if _, _, d := PoolStats(); d != d0+1 {
		t.Fatalf("nil return counted as a discard")
	}
	// A buffer at exactly the cap is kept.
	PutBuffer(&Buffer{B: make([]byte, 0, maxPooledCap)})
	if _, _, d := PoolStats(); d != d0+1 {
		t.Fatalf("at-cap return dropped")
	}
}

// BenchmarkReadFrame measures the allocating read path.
func BenchmarkReadFrame(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 4096)
	var frame bytes.Buffer
	if err := WriteFrame(&frame, payload); err != nil {
		b.Fatal(err)
	}
	raw := frame.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrame(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFrameInto measures the pooled/reusing read path — the one
// the serving loop uses. It should run allocation-free after warmup.
func BenchmarkReadFrameInto(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 4096)
	var frame bytes.Buffer
	if err := WriteFrame(&frame, payload); err != nil {
		b.Fatal(err)
	}
	raw := frame.Bytes()
	buf := make([]byte, 0, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := ReadFrameInto(bytes.NewReader(raw), buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = got[:0]
	}
}

// BenchmarkEncodePooled measures response encoding through the buffer
// pool vs. a fresh Buffer per response.
func BenchmarkEncodePooled(b *testing.B) {
	payload := bytes.Repeat([]byte{0x3C}, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := GetBuffer()
		e.U8(0)
		e.U32(8)
		for j := 0; j < 8; j++ {
			e.I64(int64(j))
			e.Bytes(payload)
		}
		PutBuffer(e)
	}
}

// BenchmarkEncodeFresh is the baseline: a new buffer every response.
func BenchmarkEncodeFresh(b *testing.B) {
	payload := bytes.Repeat([]byte{0x3C}, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var e Buffer
		e.U8(0)
		e.U32(8)
		for j := 0; j < 8; j++ {
			e.I64(int64(j))
			e.Bytes(payload)
		}
		_ = e.B
	}
}

package wire

import (
	"bytes"
	"net"
	"testing"
)

// buildBatchVec frames a GetBatch-shaped response (status, count, then
// id/len/payload triples) the way the serving path does.
func buildBatchVec(v *Vec, payloads [][]byte) {
	v.Reset()
	v.U8(0)
	v.U32(uint32(len(payloads)))
	for i, p := range payloads {
		v.I64(int64(i))
		v.U32(uint32(len(p)))
		v.Payload(p)
	}
}

// buildBatchFlat is the reference encoding via the scalar Buffer.
func buildBatchFlat(payloads [][]byte) []byte {
	var e Buffer
	e.U8(0)
	e.U32(uint32(len(payloads)))
	for i, p := range payloads {
		e.I64(int64(i))
		e.U32(uint32(len(p)))
		e.B = append(e.B, p...)
	}
	var frame bytes.Buffer
	if err := WriteFrame(&frame, e.B); err != nil {
		panic(err)
	}
	return frame.Bytes()
}

func TestVecMatchesFlatEncoding(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("one")},
		{[]byte("one"), []byte("two"), []byte("three")},
		{nil, []byte("x"), {}},                    // zero-length payloads
		{bytes.Repeat([]byte{0xAB}, 64<<10), nil}, // one big, one empty
	}
	for ci, payloads := range cases {
		var v Vec
		buildBatchVec(&v, payloads)
		want := buildBatchFlat(payloads)

		if got := v.AppendFlat(nil); !bytes.Equal(got, want) {
			t.Fatalf("case %d: AppendFlat diverged from Buffer encoding", ci)
		}
		var sink bytes.Buffer
		n, err := v.WriteTo(&sink)
		if err != nil {
			t.Fatalf("case %d: WriteTo: %v", ci, err)
		}
		if n != int64(len(want)) || !bytes.Equal(sink.Bytes(), want) {
			t.Fatalf("case %d: WriteTo wrote %d bytes, diverged from flat encoding", ci, n)
		}
		// The frame must read back through the standard framer.
		payload, err := ReadFrame(bytes.NewReader(sink.Bytes()))
		if err != nil {
			t.Fatalf("case %d: ReadFrame: %v", ci, err)
		}
		if !bytes.Equal(payload, want[4:]) {
			t.Fatalf("case %d: framed payload mismatch", ci)
		}
	}
}

func TestVecReuseAfterReset(t *testing.T) {
	var v Vec
	buildBatchVec(&v, [][]byte{[]byte("first")})
	a := v.AppendFlat(nil)
	buildBatchVec(&v, [][]byte{[]byte("second"), []byte("frame")})
	b := v.AppendFlat(nil)
	want := buildBatchFlat([][]byte{[]byte("second"), []byte("frame")})
	if !bytes.Equal(b, want) {
		t.Fatal("reused Vec produced a wrong frame")
	}
	if bytes.Equal(a, b) {
		t.Fatal("second frame identical to first; Reset did not clear")
	}
}

func TestVecWriteToTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		p, err := ReadFrame(conn)
		if err != nil {
			done <- nil
			return
		}
		done <- p
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payloads := [][]byte{bytes.Repeat([]byte{1}, 1000), bytes.Repeat([]byte{2}, 3000), {}}
	var v Vec
	buildBatchVec(&v, payloads)
	want := buildBatchFlat(payloads)
	if _, err := v.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if !bytes.Equal(got, want[4:]) {
		t.Fatal("vectored TCP write diverged from flat encoding")
	}
}

func TestVecRejectsOversizedFrame(t *testing.T) {
	var v Vec
	v.Reset()
	v.U8(0)
	// Reference (not allocate) a payload bigger than MaxFrame by stacking
	// the same slab-sized slice.
	chunk := make([]byte, 32<<20)
	for i := 0; i < (MaxFrame/len(chunk))+1; i++ {
		v.Payload(chunk)
	}
	if _, err := v.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("oversized vectored frame accepted")
	}
}

func TestVecWriteBeforeResetFails(t *testing.T) {
	var v Vec
	if _, err := v.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTo on an unreset Vec must fail, not panic")
	}
}

func TestVecPool(t *testing.T) {
	v := GetVec()
	v.U8(1)
	v.Payload([]byte("payload"))
	PutVec(v)
	v2 := GetVec()
	defer PutVec(v2)
	if got := v2.Len(); got != 0 {
		t.Fatalf("recycled Vec not reset: len=%d", got)
	}
	gets, news, _ := VecPoolStats()
	if gets < 2 || news < 1 || news > gets {
		t.Fatalf("implausible vec pool stats: gets=%d news=%d", gets, news)
	}

	_, _, d0 := VecPoolStats()
	PutVec(&Vec{scratch: make([]byte, 0, 2<<20)})
	if _, _, d := VecPoolStats(); d != d0+1 {
		t.Fatal("oversized vec return not counted as a discard")
	}
	PutVec(nil) // must not panic or count
	if _, _, d := VecPoolStats(); d != d0+1 {
		t.Fatal("nil vec return counted as a discard")
	}
}

// BenchmarkVecWrite measures the vectored frame assembly + write against a
// prebuilt discard connection — the per-response overhead of the zero-copy
// path. Allocation-free after warmup.
func BenchmarkVecWrite(b *testing.B) {
	payload := bytes.Repeat([]byte{0x3C}, 1024)
	var sink discardWriter
	v := GetVec()
	defer PutVec(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Reset()
		v.U8(0)
		v.U32(16)
		for j := 0; j < 16; j++ {
			v.I64(int64(j))
			v.U32(uint32(len(payload)))
			v.Payload(payload)
		}
		if _, err := v.WriteTo(&sink); err != nil {
			b.Fatal(err)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// Package wire provides the length-prefixed framing and binary
// encode/decode helpers shared by the cache RPC protocol (internal/rpc) and
// the distributed directory protocol (internal/dkv): a 4-byte big-endian
// payload length followed by the payload, with big-endian integers and
// IEEE-754 float bits inside.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// MaxFrame bounds a single frame; a batch of 256 ImageNet samples is
// ~30 MB, so 256 MB leaves ample headroom while rejecting garbage lengths.
const MaxFrame = 256 << 20

// WriteFrame sends one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame receives one length-prefixed payload into a fresh allocation.
// Hot paths that can prove the payload is not retained past the next read
// should prefer ReadFrameInto, which reuses a caller-owned buffer.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto receives one length-prefixed payload, reusing buf's backing
// array when it has sufficient capacity (allocating — and returning — a
// larger one otherwise). The returned slice aliases buf whenever it fits,
// so the caller must not retain references into a previous frame across
// calls: decode-and-copy before the next ReadFrameInto. Passing nil buf is
// equivalent to ReadFrame.
//
// The per-request/response serving path uses this (one persistent buffer
// per connection) to eliminate the two large allocations — request read
// and response read — that otherwise dominate the RPC allocation profile.
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds limit", n)
	}
	var payload []byte
	if uint32(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Encode-buffer pool. Response/request encoding on the serving path churns
// through short-lived append buffers; recycling them through a sync.Pool
// turns the per-request cost into a pointer swap once the pool is warm.
// The gets/news counters feed the pooled-buffer reuse-rate metric: reuse
// rate = 1 - news/gets (pool misses allocate a fresh buffer via New).
var (
	bufPool = sync.Pool{New: func() interface{} {
		atomic.AddInt64(&poolNews, 1)
		return &Buffer{B: make([]byte, 0, 4096)}
	}}
	poolGets     int64
	poolNews     int64
	poolDiscards int64
)

// maxPooledCap is the largest backing array PutBuffer keeps. One jumbo
// response must not poison the pool by pinning megabytes behind a pooled
// pointer, so anything larger is dropped (and counted) instead of recycled.
const maxPooledCap = 1 << 20

// GetBuffer returns an empty encode buffer from the pool.
func GetBuffer() *Buffer {
	atomic.AddInt64(&poolGets, 1)
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// PutBuffer recycles an encode buffer. The caller must not touch the
// buffer (or any slice of its backing array) afterwards. Oversized buffers
// are dropped — and counted in PoolStats — so one jumbo response does not
// pin megabytes in the pool.
func PutBuffer(b *Buffer) {
	if b == nil {
		return
	}
	if cap(b.B) > maxPooledCap {
		atomic.AddInt64(&poolDiscards, 1)
		return
	}
	bufPool.Put(b)
}

// PoolStats reports (gets, news, discards): total pooled-buffer checkouts,
// how many of them had to allocate, and how many returns were dropped for
// exceeding the pooled-capacity cap. gets-news is the number of reuses.
func PoolStats() (gets, news, discards int64) {
	return atomic.LoadInt64(&poolGets), atomic.LoadInt64(&poolNews), atomic.LoadInt64(&poolDiscards)
}

// Buffer is a simple append-based encoder.
type Buffer struct{ B []byte }

// U8 appends one byte.
func (e *Buffer) U8(v byte) { e.B = append(e.B, v) }

// U32 appends a big-endian uint32.
func (e *Buffer) U32(v uint32) { e.B = binary.BigEndian.AppendUint32(e.B, v) }

// I64 appends a big-endian int64.
func (e *Buffer) I64(v int64) { e.B = binary.BigEndian.AppendUint64(e.B, uint64(v)) }

// F64 appends an IEEE-754 float64.
func (e *Buffer) F64(v float64) { e.B = binary.BigEndian.AppendUint64(e.B, math.Float64bits(v)) }

// Bytes appends a length-prefixed byte string.
func (e *Buffer) Bytes(v []byte) {
	e.U32(uint32(len(v)))
	e.B = append(e.B, v...)
}

// Str appends a length-prefixed string.
func (e *Buffer) Str(s string) { e.Bytes([]byte(s)) }

// Reader is the matching decoder; it fails sticky on short input.
type Reader struct {
	B   []byte
	Off int
	Err error
}

// NewReader wraps a payload for decoding.
func NewReader(b []byte) *Reader { return &Reader{B: b} }

func (d *Reader) ensure(n int) bool {
	if d.Err != nil {
		return false
	}
	if d.Off+n > len(d.B) {
		d.Err = fmt.Errorf("wire: truncated message (need %d bytes at offset %d of %d)", n, d.Off, len(d.B))
		return false
	}
	return true
}

// U8 decodes one byte.
func (d *Reader) U8() byte {
	if !d.ensure(1) {
		return 0
	}
	v := d.B[d.Off]
	d.Off++
	return v
}

// U32 decodes a big-endian uint32.
func (d *Reader) U32() uint32 {
	if !d.ensure(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.B[d.Off:])
	d.Off += 4
	return v
}

// I64 decodes a big-endian int64.
func (d *Reader) I64() int64 {
	if !d.ensure(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.B[d.Off:])
	d.Off += 8
	return int64(v)
}

// F64 decodes an IEEE-754 float64.
func (d *Reader) F64() float64 {
	if !d.ensure(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.B[d.Off:])
	d.Off += 8
	return math.Float64frombits(v)
}

// BytesField decodes a length-prefixed byte string (aliasing the payload).
func (d *Reader) BytesField() []byte {
	n := int(d.U32())
	if d.Err != nil || !d.ensure(n) {
		return nil
	}
	v := d.B[d.Off : d.Off+n : d.Off+n]
	d.Off += n
	return v
}

// Str decodes a length-prefixed string.
func (d *Reader) Str() string { return string(d.BytesField()) }

package cache

import (
	"math/rand"

	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

// DistDefault is the distributed Default baseline of §V-G: every node runs
// its own uncoordinated LRU cache over the shared backend, uniform sampling,
// no directory — so hot samples end up duplicated across nodes and every
// miss hammers the same NFS server.
type DistDefault struct {
	backend *storage.Backend
	nodes   []*Baseline
}

// NewDistDefault builds the distributed Default baseline with one LRU cache
// of perNodeCapacity bytes per node.
func NewDistDefault(backend *storage.Backend, nodes int, perNodeCapacity int64, cfg ServiceConfig) *DistDefault {
	d := &DistDefault{backend: backend}
	for n := 0; n < nodes; n++ {
		d.nodes = append(d.nodes, NewDefault(backend, perNodeCapacity, cfg))
	}
	return d
}

// Name implements the distributed data-service contract.
func (d *DistDefault) Name() string { return "default-dist" }

// Nodes implements the distributed data-service contract.
func (d *DistDefault) Nodes() int { return len(d.nodes) }

// SubstitutionSource implements the accuracy-model contract.
func (d *DistDefault) SubstitutionSource() string { return "none" }

// Stats implements the distributed data-service contract.
func (d *DistDefault) Stats() metrics.CacheStats {
	var s metrics.CacheStats
	for _, n := range d.nodes {
		s.Add(n.Stats())
	}
	return s
}

// BeginEpoch implements the distributed data-service contract: one global
// uniform permutation; the trainer shards its batches across nodes.
func (d *DistDefault) BeginEpoch(_ simclock.Time, _ int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule {
	return sampling.UniformSchedule(tr.Len(), rng)
}

// FetchBatchOn implements the distributed data-service contract.
func (d *DistDefault) FetchBatchOn(node int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
	return d.nodes[node].FetchBatch(at, ids)
}

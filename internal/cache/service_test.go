package cache

import (
	"math/rand"
	"testing"

	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/storage"
)

func testBackend(t *testing.T) *storage.Backend {
	t.Helper()
	spec := dataset.Spec{Name: "svc", NumSamples: 2000, MeanSampleBytes: 1000, Seed: 9}
	b, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newTracker(t *testing.T, n int) *sampling.Tracker {
	t.Helper()
	tr, err := sampling.NewTracker(n, 3.0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// runEpoch drives one full epoch through the service with a single worker.
func runEpoch(t *testing.T, b *Baseline, tr *sampling.Tracker, seed int64) sampling.Schedule {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sched := b.BeginEpoch(0, 0, tr, rng)
	for _, batch := range sched.Batches(256) {
		_, served := b.FetchBatch(0, batch)
		if len(served) != len(batch) {
			t.Fatalf("served %d of %d", len(served), len(batch))
		}
	}
	return sched
}

func TestDefaultServiceFetchesEverySample(t *testing.T) {
	back := testBackend(t)
	svc := NewDefault(back, back.Spec().TotalBytes()/5, DefaultServiceConfig())
	tr := newTracker(t, back.Spec().NumSamples)
	sched := runEpoch(t, svc, tr, 1)
	if len(sched.Fetch) != back.Spec().NumSamples {
		t.Fatalf("fetched %d, want full dataset", len(sched.Fetch))
	}
	s := svc.Stats()
	if s.Requests() != int64(back.Spec().NumSamples) {
		t.Fatalf("requests = %d", s.Requests())
	}
	if s.Misses == 0 {
		t.Fatal("cold cache produced no misses")
	}
}

func TestDefaultServiceHitRatioStabilizesLow(t *testing.T) {
	back := testBackend(t)
	svc := NewDefault(back, back.Spec().TotalBytes()/5, DefaultServiceConfig())
	tr := newTracker(t, back.Spec().NumSamples)
	for e := 0; e < 3; e++ {
		runEpoch(t, svc, tr, int64(e))
	}
	hr := svc.Stats().HitRatio()
	// LRU under per-epoch reshuffles: some hits, far below the 20% capacity.
	if hr <= 0 || hr > 0.25 {
		t.Fatalf("LRU hit ratio = %g, want (0, 0.25]", hr)
	}
}

func TestQuiverSubstitutes(t *testing.T) {
	back := testBackend(t)
	svc := NewQuiver(back, back.Spec().TotalBytes()/5, DefaultServiceConfig())
	tr := newTracker(t, back.Spec().NumSamples)
	runEpoch(t, svc, tr, 1) // warm the cache
	runEpoch(t, svc, tr, 2)
	s := svc.Stats()
	if s.Substitutions == 0 {
		t.Fatal("Quiver never substituted")
	}
	// Each resident substitutes at most once per epoch: substitutions per
	// epoch cannot exceed cache size.
	if s.Substitutions > 2*int64(svc.Policy().Len()) {
		t.Fatalf("substitutions %d exceed 2 epochs × %d residents", s.Substitutions, svc.Policy().Len())
	}
}

func TestQuiverServedIDsDifferOnSubstitution(t *testing.T) {
	back := testBackend(t)
	svc := NewQuiver(back, back.Spec().TotalBytes()/5, DefaultServiceConfig())
	tr := newTracker(t, back.Spec().NumSamples)
	runEpoch(t, svc, tr, 1)
	rng := rand.New(rand.NewSource(2))
	sched := svc.BeginEpoch(0, 1, tr, rng)
	subSeen := false
	for _, batch := range sched.Batches(256) {
		_, served := svc.FetchBatch(0, batch)
		for i := range batch {
			if served[i] != batch[i] {
				subSeen = true
				if !svc.Policy().Contains(served[i]) {
					// A substitute must have been resident when chosen; it
					// can only leave via eviction, which Quiver's LRU does
					// on admit. Weak check: it must at least be a valid ID.
					if !back.Spec().Contains(served[i]) {
						t.Fatalf("substitute %d not a valid sample", served[i])
					}
				}
			}
		}
	}
	if !subSeen {
		t.Fatal("no substitution observed in served IDs")
	}
}

func TestCoorDLHitRatioEqualsCapacityFraction(t *testing.T) {
	back := testBackend(t)
	svc := NewCoorDL(back, back.Spec().TotalBytes()/5, DefaultServiceConfig())
	tr := newTracker(t, back.Spec().NumSamples)
	runEpoch(t, svc, tr, 1) // fill
	before := svc.Stats()
	runEpoch(t, svc, tr, 2)
	after := svc.Stats()
	epochHits := after.Hits - before.Hits
	epochReq := after.Requests() - before.Requests()
	hr := float64(epochHits) / float64(epochReq)
	if hr < 0.17 || hr > 0.23 {
		t.Fatalf("CoorDL steady-state hit ratio = %g, want ≈0.20", hr)
	}
	if svc.Policy().Evictions() != 0 {
		t.Fatal("CoorDL evicted")
	}
}

func TestBaseFetchesAllTrainsFewer(t *testing.T) {
	back := testBackend(t)
	svc := NewBase(back, back.Spec().TotalBytes()/5, DefaultServiceConfig(), sampling.DefaultCIS())
	tr := newTracker(t, back.Spec().NumSamples)
	sched := runEpoch(t, svc, tr, 1)
	if len(sched.Fetch) != back.Spec().NumSamples {
		t.Fatalf("CIS fetched %d, want all", len(sched.Fetch))
	}
	if sched.TrainedCount() >= len(sched.Fetch) {
		t.Fatal("CIS trained everything")
	}
}

func TestILFUFetchesSubset(t *testing.T) {
	back := testBackend(t)
	svc := NewILFU(back, back.Spec().TotalBytes()/5, DefaultServiceConfig(), sampling.DefaultIIS())
	tr := newTracker(t, back.Spec().NumSamples)
	sched := runEpoch(t, svc, tr, 1)
	if len(sched.Fetch) >= back.Spec().NumSamples {
		t.Fatal("IIS did not reduce fetches")
	}
}

func TestOracleZeroBackendReads(t *testing.T) {
	back := testBackend(t)
	svc := NewOracle(back, DefaultServiceConfig(), sampling.DefaultIIS())
	tr := newTracker(t, back.Spec().NumSamples)
	runEpoch(t, svc, tr, 1)
	if got := back.Stats().SampleReads; got != 0 {
		t.Fatalf("Oracle issued %d backend reads", got)
	}
	if svc.Stats().Misses != 0 {
		t.Fatal("Oracle recorded misses")
	}
}

func TestFetchBatchAdvancesTime(t *testing.T) {
	back := testBackend(t)
	svc := NewDefault(back, back.Spec().TotalBytes()/5, DefaultServiceConfig())
	tr := newTracker(t, back.Spec().NumSamples)
	rng := rand.New(rand.NewSource(3))
	sched := svc.BeginEpoch(0, 0, tr, rng)
	end, _ := svc.FetchBatch(0, sched.Fetch[:64])
	if end <= 0 {
		t.Fatalf("cold batch completed instantly: %v", end)
	}
}

func TestStatsIncludePolicyEvictions(t *testing.T) {
	back := testBackend(t)
	// Tiny cache forces evictions quickly.
	svc := NewDefault(back, 10_000, DefaultServiceConfig())
	tr := newTracker(t, back.Spec().NumSamples)
	runEpoch(t, svc, tr, 1)
	if svc.Stats().Evictions == 0 {
		t.Fatal("evictions not surfaced in Stats")
	}
}

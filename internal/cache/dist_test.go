package cache

import (
	"math/rand"
	"testing"

	"icache/internal/sampling"
	"icache/internal/simclock"
)

func TestNoCacheAlwaysMisses(t *testing.T) {
	back := testBackend(t)
	svc := NewNoCache(back)
	tr := newTracker(t, back.Spec().NumSamples)
	rng := rand.New(rand.NewSource(1))
	sched := svc.BeginEpoch(0, 0, tr, rng)
	if len(sched.Fetch) != back.Spec().NumSamples {
		t.Fatalf("nocache fetched %d, want all", len(sched.Fetch))
	}
	end, served := svc.FetchBatch(0, sched.Fetch[:128])
	if end <= 0 || len(served) != 128 {
		t.Fatalf("end=%v served=%d", end, len(served))
	}
	st := svc.Stats()
	if st.Hits != 0 || st.Misses != 128 {
		t.Fatalf("stats = %+v", st)
	}
	if svc.SubstitutionSource() != "none" {
		t.Fatal("nocache substitution source wrong")
	}
	if svc.Name() != "nocache" {
		t.Fatalf("name = %q", svc.Name())
	}
}

func TestNoCacheCISSchedule(t *testing.T) {
	back := testBackend(t)
	svc := NewNoCacheCIS(back, sampling.DefaultCIS())
	tr := newTracker(t, back.Spec().NumSamples)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < back.Spec().NumSamples; i++ {
		tr.Observe(0, rng.Float64())
	}
	sched := svc.BeginEpoch(0, 0, tr, rng)
	if len(sched.Fetch) != back.Spec().NumSamples {
		t.Fatal("CIS must fetch everything")
	}
	if sched.TrainedCount() >= len(sched.Fetch) {
		t.Fatal("CIS must train a subset")
	}
	if svc.Name() != "nocache-cis" {
		t.Fatalf("name = %q", svc.Name())
	}
}

func TestILRUUsesIISAndLRU(t *testing.T) {
	back := testBackend(t)
	svc := NewILRU(back, back.Spec().TotalBytes()/5, DefaultServiceConfig(), sampling.DefaultIIS())
	tr := newTracker(t, back.Spec().NumSamples)
	rng := rand.New(rand.NewSource(2))
	sched := svc.BeginEpoch(0, 0, tr, rng)
	if len(sched.Fetch) >= back.Spec().NumSamples {
		t.Fatal("ILRU did not reduce fetches")
	}
	if svc.Policy().Name() != "lru" {
		t.Fatalf("policy = %q, want lru", svc.Policy().Name())
	}
	if svc.SubstitutionSource() != "none" {
		t.Fatal("ILRU must not substitute")
	}
}

func TestDistDefaultShardsAcrossNodes(t *testing.T) {
	back := testBackend(t)
	svc := NewDistDefault(back, 3, back.Spec().TotalBytes()/5, DefaultServiceConfig())
	if svc.Nodes() != 3 {
		t.Fatalf("Nodes = %d", svc.Nodes())
	}
	tr := newTracker(t, back.Spec().NumSamples)
	rng := rand.New(rand.NewSource(3))
	sched := svc.BeginEpoch(0, 0, tr, rng)
	var at [3]simclock.Time
	for i, batch := range sched.Batches(128) {
		n := i % 3
		end, served := svc.FetchBatchOn(n, at[n], batch)
		if len(served) != len(batch) {
			t.Fatalf("served %d of %d", len(served), len(batch))
		}
		at[n] = end
	}
	st := svc.Stats()
	if st.Requests() != int64(back.Spec().NumSamples) {
		t.Fatalf("requests = %d, want %d", st.Requests(), back.Spec().NumSamples)
	}
	// Uncoordinated nodes duplicate hot samples: total inserts can exceed
	// what a single shared cache would admit — each node fills its own LRU.
	if st.Inserts == 0 {
		t.Fatal("no inserts")
	}
	if svc.Name() != "default-dist" {
		t.Fatalf("name = %q", svc.Name())
	}
}

func TestDistDefaultNodesIndependent(t *testing.T) {
	back := testBackend(t)
	svc := NewDistDefault(back, 2, back.Spec().TotalBytes()/10, DefaultServiceConfig())
	tr := newTracker(t, back.Spec().NumSamples)
	rng := rand.New(rand.NewSource(4))
	sched := svc.BeginEpoch(0, 0, tr, rng)
	ids := sched.Fetch[:64]
	// Warm node 0 only.
	svc.FetchBatchOn(0, 0, ids)
	before := svc.Stats()
	// Node 1 must miss on the same IDs (no shared cache in Default-dist).
	svc.FetchBatchOn(1, 0, ids)
	after := svc.Stats()
	if after.Misses-before.Misses != int64(len(ids)) {
		t.Fatalf("node 1 hit node 0's cache: %d misses for %d requests",
			after.Misses-before.Misses, len(ids))
	}
}

package cache

import (
	"testing"

	"icache/internal/dataset"
)

func dsid(i int64) dataset.SampleID { return dataset.SampleID(i) }

func TestFIFOEvictsOldest(t *testing.T) {
	f := NewFIFO(100)
	f.Admit(1, 40)
	f.Admit(2, 40)
	f.Touch(1) // FIFO ignores accesses
	f.Admit(3, 40)
	if f.Contains(1) {
		t.Fatal("FIFO kept the oldest despite a touch")
	}
	if !f.Contains(2) || !f.Contains(3) {
		t.Fatal("FIFO evicted the wrong entry")
	}
	if f.Evictions() != 1 {
		t.Fatalf("evictions = %d", f.Evictions())
	}
}

func TestFIFOResidentsOldestFirst(t *testing.T) {
	f := NewFIFO(1000)
	f.Admit(1, 10)
	f.Admit(2, 10)
	f.Admit(3, 10)
	got := f.Residents(nil)
	for i, want := range []int64{1, 2, 3} {
		if int64(got[i]) != want {
			t.Fatalf("residents = %v", got)
		}
	}
	if !f.Remove(2) || f.Contains(2) {
		t.Fatal("Remove failed")
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock(120)
	c.Admit(1, 40)
	c.Admit(2, 40)
	c.Admit(3, 40)
	c.Touch(2) // 2 gets a second chance
	c.Admit(4, 40)
	if !c.Contains(2) {
		t.Fatal("referenced entry evicted on first pass")
	}
	if c.Contains(1) {
		t.Fatal("unreferenced oldest survived")
	}
}

func TestClockAllReferencedStillEvicts(t *testing.T) {
	c := NewClock(120)
	c.Admit(1, 40)
	c.Admit(2, 40)
	c.Admit(3, 40)
	for _, id := range []int64{1, 2, 3} {
		c.Touch(dsid(id))
	}
	// A full pass clears bits, then evicts; must not loop forever.
	c.Admit(4, 40)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if !c.Contains(4) {
		t.Fatal("new entry not admitted")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}
}

func TestClockRemoveKeepsRingConsistent(t *testing.T) {
	c := NewClock(1000)
	for i := int64(0); i < 10; i++ {
		c.Admit(dsid(i), 50)
	}
	for i := int64(0); i < 10; i += 2 {
		if !c.Remove(dsid(i)) {
			t.Fatalf("remove %d failed", i)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("len = %d", c.Len())
	}
	res := c.Residents(nil)
	if len(res) != 5 {
		t.Fatalf("residents = %v", res)
	}
	for _, id := range res {
		if int64(id)%2 == 0 {
			t.Fatalf("removed entry %d still resident", id)
		}
	}
	// The ring must still evict correctly after the removals.
	c.Admit(dsid(100), 800)
	if c.UsedBytes() > c.CapacityBytes() {
		t.Fatal("over budget after ring surgery")
	}
}

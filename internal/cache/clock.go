package cache

import (
	"fmt"

	"icache/internal/dataset"
)

// FIFO evicts in admission order, ignoring accesses entirely — the
// simplest possible bounded cache and a useful lower bar for the policy
// comparison experiment.
type FIFO struct {
	cap       int64
	used      int64
	items     map[dataset.SampleID]*entry
	head      *entry // oldest
	tail      *entry // newest
	evictions int64
}

// NewFIFO builds a FIFO policy with the given byte capacity.
func NewFIFO(capacityBytes int64) *FIFO {
	if capacityBytes <= 0 {
		panic(fmt.Sprintf("cache: FIFO capacity %d", capacityBytes))
	}
	return &FIFO{cap: capacityBytes, items: make(map[dataset.SampleID]*entry)}
}

// Name implements Policy.
func (f *FIFO) Name() string { return "fifo" }

// Touch implements Policy (accesses do not reorder FIFO).
func (f *FIFO) Touch(id dataset.SampleID) bool { return f.Contains(id) }

// Contains implements Policy.
func (f *FIFO) Contains(id dataset.SampleID) bool {
	_, ok := f.items[id]
	return ok
}

func (f *FIFO) push(e *entry) {
	e.prev = f.tail
	if f.tail != nil {
		f.tail.next = e
	}
	f.tail = e
	if f.head == nil {
		f.head = e
	}
}

func (f *FIFO) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		f.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		f.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Admit implements Policy.
func (f *FIFO) Admit(id dataset.SampleID, size int) bool {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Admit size %d", size))
	}
	if f.Contains(id) {
		return true
	}
	if int64(size) > f.cap {
		return false
	}
	for f.used+int64(size) > f.cap {
		victim := f.head
		f.unlink(victim)
		delete(f.items, victim.id)
		f.used -= int64(victim.size)
		f.evictions++
	}
	e := &entry{id: id, size: size}
	f.items[id] = e
	f.push(e)
	f.used += int64(size)
	return true
}

// Remove implements Policy.
func (f *FIFO) Remove(id dataset.SampleID) bool {
	e, ok := f.items[id]
	if !ok {
		return false
	}
	f.unlink(e)
	delete(f.items, id)
	f.used -= int64(e.size)
	return true
}

// Len implements Policy.
func (f *FIFO) Len() int { return len(f.items) }

// UsedBytes implements Policy.
func (f *FIFO) UsedBytes() int64 { return f.used }

// CapacityBytes implements Policy.
func (f *FIFO) CapacityBytes() int64 { return f.cap }

// Evictions implements Policy.
func (f *FIFO) Evictions() int64 { return f.evictions }

// Residents implements Policy (oldest first).
func (f *FIFO) Residents(dst []dataset.SampleID) []dataset.SampleID {
	for e := f.head; e != nil; e = e.next {
		dst = append(dst, e.id)
	}
	return dst
}

// Clock is the second-chance policy OS page caches use (§II-C names the OS
// page cache as the recency/frequency archetype iCache replaces): a
// circular scan clears reference bits and evicts the first unreferenced
// entry.
type Clock struct {
	cap       int64
	used      int64
	items     map[dataset.SampleID]*clockEntry
	ring      []*clockEntry
	hand      int
	evictions int64
}

type clockEntry struct {
	id         dataset.SampleID
	size       int
	referenced bool
	pos        int
}

// NewClock builds a CLOCK policy with the given byte capacity.
func NewClock(capacityBytes int64) *Clock {
	if capacityBytes <= 0 {
		panic(fmt.Sprintf("cache: Clock capacity %d", capacityBytes))
	}
	return &Clock{cap: capacityBytes, items: make(map[dataset.SampleID]*clockEntry)}
}

// Name implements Policy.
func (c *Clock) Name() string { return "clock" }

// Touch implements Policy: a hit sets the reference bit.
func (c *Clock) Touch(id dataset.SampleID) bool {
	e, ok := c.items[id]
	if !ok {
		return false
	}
	e.referenced = true
	return true
}

// Contains implements Policy.
func (c *Clock) Contains(id dataset.SampleID) bool {
	_, ok := c.items[id]
	return ok
}

// evictOne advances the hand, giving referenced entries a second chance.
func (c *Clock) evictOne() {
	for {
		if len(c.ring) == 0 {
			return
		}
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		if e.referenced {
			e.referenced = false
			c.hand++
			continue
		}
		c.removeAt(c.hand)
		c.evictions++
		return
	}
}

func (c *Clock) removeAt(i int) {
	e := c.ring[i]
	last := len(c.ring) - 1
	if i != last {
		c.ring[i] = c.ring[last]
		c.ring[i].pos = i
	}
	c.ring = c.ring[:last]
	delete(c.items, e.id)
	c.used -= int64(e.size)
}

// Admit implements Policy.
func (c *Clock) Admit(id dataset.SampleID, size int) bool {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Admit size %d", size))
	}
	if c.Touch(id) {
		return true
	}
	if int64(size) > c.cap {
		return false
	}
	for c.used+int64(size) > c.cap {
		c.evictOne()
	}
	e := &clockEntry{id: id, size: size, pos: len(c.ring)}
	c.items[id] = e
	c.ring = append(c.ring, e)
	c.used += int64(size)
	return true
}

// Remove implements Policy.
func (c *Clock) Remove(id dataset.SampleID) bool {
	e, ok := c.items[id]
	if !ok {
		return false
	}
	c.removeAt(e.pos)
	return true
}

// Len implements Policy.
func (c *Clock) Len() int { return len(c.items) }

// UsedBytes implements Policy.
func (c *Clock) UsedBytes() int64 { return c.used }

// CapacityBytes implements Policy.
func (c *Clock) CapacityBytes() int64 { return c.cap }

// Evictions implements Policy.
func (c *Clock) Evictions() int64 { return c.evictions }

// Residents implements Policy (ring order).
func (c *Clock) Residents(dst []dataset.SampleID) []dataset.SampleID {
	for _, e := range c.ring {
		dst = append(dst, e.id)
	}
	return dst
}

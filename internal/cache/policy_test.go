package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"icache/internal/dataset"
)

func TestLRUBasicHitMiss(t *testing.T) {
	l := NewLRU(100)
	if l.Touch(1) {
		t.Fatal("hit on empty cache")
	}
	if !l.Admit(1, 40) {
		t.Fatal("admit failed with room")
	}
	if !l.Touch(1) {
		t.Fatal("miss after admit")
	}
	if l.Len() != 1 || l.UsedBytes() != 40 {
		t.Fatalf("len=%d used=%d", l.Len(), l.UsedBytes())
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	l := NewLRU(100)
	l.Admit(1, 40)
	l.Admit(2, 40)
	l.Touch(1)     // 2 is now least recent
	l.Admit(3, 40) // must evict 2
	if l.Contains(2) {
		t.Fatal("LRU evicted wrong victim")
	}
	if !l.Contains(1) || !l.Contains(3) {
		t.Fatal("LRU evicted a recent entry")
	}
	if l.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", l.Evictions())
	}
}

func TestLRUOversizedRejected(t *testing.T) {
	l := NewLRU(100)
	l.Admit(1, 60)
	if l.Admit(2, 150) {
		t.Fatal("oversized sample admitted")
	}
	if !l.Contains(1) {
		t.Fatal("oversized admit flushed the cache")
	}
}

func TestLRUReAdmitTouches(t *testing.T) {
	l := NewLRU(100)
	l.Admit(1, 40)
	l.Admit(2, 40)
	l.Admit(1, 40) // refresh 1
	l.Admit(3, 40) // must evict 2, not 1
	if l.Contains(2) || !l.Contains(1) {
		t.Fatal("re-admit did not refresh recency")
	}
}

func TestLRURemove(t *testing.T) {
	l := NewLRU(100)
	l.Admit(1, 40)
	if !l.Remove(1) || l.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
	if l.UsedBytes() != 0 {
		t.Fatalf("used = %d after remove", l.UsedBytes())
	}
}

func TestLRUResidentsMRUOrder(t *testing.T) {
	l := NewLRU(1000)
	l.Admit(1, 10)
	l.Admit(2, 10)
	l.Admit(3, 10)
	l.Touch(1)
	got := l.Residents(nil)
	want := []dataset.SampleID{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("residents = %v, want %v", got, want)
		}
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	l := NewLFU(100)
	l.Admit(1, 40)
	l.Admit(2, 40)
	l.Touch(1)
	l.Touch(1)
	l.Admit(3, 40) // evicts 2 (freq 1) not 1 (freq 3)
	if l.Contains(2) || !l.Contains(1) || !l.Contains(3) {
		t.Fatal("LFU evicted wrong victim")
	}
	if l.Evictions() != 1 {
		t.Fatalf("evictions = %d", l.Evictions())
	}
}

func TestLFUTieBreaksFIFO(t *testing.T) {
	l := NewLFU(100)
	l.Admit(1, 40)
	l.Admit(2, 40)
	l.Admit(3, 40) // both at freq 1 → evict the older (1)
	if l.Contains(1) || !l.Contains(2) {
		t.Fatal("LFU tie-break not FIFO")
	}
}

func TestLFURemoveAndReAdd(t *testing.T) {
	l := NewLFU(100)
	l.Admit(1, 40)
	l.Touch(1)
	if !l.Remove(1) {
		t.Fatal("Remove failed")
	}
	if l.Touch(1) {
		t.Fatal("hit after remove")
	}
	l.Admit(1, 40) // fresh entry, freq resets
	l.Admit(2, 40)
	l.Touch(2)
	l.Admit(3, 40) // evicts 1 (freq 1)
	if l.Contains(1) {
		t.Fatal("re-added entry kept stale frequency")
	}
}

func TestMinIONeverEvicts(t *testing.T) {
	m := NewMinIO(100)
	if !m.Admit(1, 60) || !m.Admit(2, 40) {
		t.Fatal("admits with room failed")
	}
	if m.Admit(3, 1) {
		t.Fatal("MinIO admitted past capacity")
	}
	if !m.Contains(1) || !m.Contains(2) {
		t.Fatal("MinIO lost an entry")
	}
	if m.Evictions() != 0 {
		t.Fatal("MinIO evicted")
	}
	if !m.Touch(1) || m.Touch(3) {
		t.Fatal("Touch wrong")
	}
}

func TestUnboundedAdmitsEverything(t *testing.T) {
	u := NewUnbounded()
	for i := 0; i < 1000; i++ {
		if !u.Admit(dataset.SampleID(i), 1<<20) {
			t.Fatal("unbounded rejected")
		}
	}
	if u.Len() != 1000 || u.CapacityBytes() != 0 {
		t.Fatalf("len=%d cap=%d", u.Len(), u.CapacityBytes())
	}
	if !u.Remove(5) || u.Contains(5) {
		t.Fatal("Remove wrong")
	}
}

func TestAdmitZeroSizePanics(t *testing.T) {
	for _, p := range []Policy{NewLRU(10), NewLFU(10), NewMinIO(10), NewUnbounded(), NewFIFO(10), NewClock(10)} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Admit(_, 0) did not panic", p.Name())
				}
			}()
			p.Admit(1, 0)
		}()
	}
}

func TestNewPolicyZeroCapacityPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"lru":   func() { NewLRU(0) },
		"lfu":   func() { NewLFU(0) },
		"minio": func() { NewMinIO(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: zero capacity did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: under arbitrary workloads every bounded policy respects its byte
// budget, and Len/UsedBytes stay consistent with a reference map.
func TestPolicyCapacityInvariantProperty(t *testing.T) {
	mk := map[string]func() Policy{
		"lru":   func() Policy { return NewLRU(5000) },
		"lfu":   func() Policy { return NewLFU(5000) },
		"minio": func() Policy { return NewMinIO(5000) },
		"fifo":  func() Policy { return NewFIFO(5000) },
		"clock": func() Policy { return NewClock(5000) },
	}
	for name, ctor := range mk {
		name, ctor := name, ctor
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			p := ctor()
			for op := 0; op < 1000; op++ {
				id := dataset.SampleID(rng.Intn(200))
				switch rng.Intn(3) {
				case 0:
					p.Admit(id, 1+rng.Intn(500))
				case 1:
					p.Touch(id)
				case 2:
					p.Remove(id)
				}
				if p.UsedBytes() > p.CapacityBytes() {
					return false
				}
				if p.UsedBytes() < 0 || p.Len() < 0 {
					return false
				}
			}
			res := p.Residents(nil)
			if len(res) != p.Len() {
				return false
			}
			seen := map[dataset.SampleID]bool{}
			for _, id := range res {
				if seen[id] || !p.Contains(id) {
					return false
				}
				seen[id] = true
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: LFU pops victims in nondecreasing frequency order at eviction
// time relative to the remaining set (checked via repeated fills).
func TestLFUHeapOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLFU(10 * 100)
		freq := map[dataset.SampleID]int{}
		for i := 0; i < 10; i++ {
			id := dataset.SampleID(i)
			l.Admit(id, 100)
			freq[id] = 1
			for k := rng.Intn(5); k > 0; k-- {
				l.Touch(id)
				freq[id]++
			}
		}
		// Admitting one more evicts exactly the min-frequency (FIFO-tied) id.
		minID, minF := dataset.SampleID(-1), 1<<30
		for i := 0; i < 10; i++ {
			id := dataset.SampleID(i)
			if freq[id] < minF {
				minID, minF = id, freq[id]
			}
		}
		l.Admit(100, 100)
		return !l.Contains(minID)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package cache provides the byte-budgeted cache policies and the baseline
// data services the paper compares iCache against: Default (LRU), Base
// (LRU + computing-oriented IS), Quiver (substitutability), CoorDL (MinIO
// no-eviction), iLFU (IIS + LFU), and Oracle (all data in memory).
//
// The iCache system itself lives in internal/icache; it reuses nothing from
// the policies here by design — the paper's point is precisely that
// recency/frequency policies are the wrong tool once importance sampling
// drives the access stream.
package cache

import (
	"fmt"

	"icache/internal/dataset"
)

// Policy is a byte-capacity cache eviction policy over sample IDs. Policies
// are not safe for concurrent use; the simulation is sequential and the RPC
// server serializes access.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Touch records an access to id and reports whether it was cached.
	Touch(id dataset.SampleID) bool
	// Contains reports whether id is cached, without recording an access.
	Contains(id dataset.SampleID) bool
	// Admit offers a fetched sample of the given size. The policy may evict
	// to make room; it reports whether the sample was admitted.
	Admit(id dataset.SampleID, size int) bool
	// Remove drops id if present, reporting whether it was cached.
	Remove(id dataset.SampleID) bool
	// Len reports the number of cached samples.
	Len() int
	// UsedBytes reports the cached byte volume.
	UsedBytes() int64
	// CapacityBytes reports the configured byte budget (0 = unbounded).
	CapacityBytes() int64
	// Evictions reports the cumulative eviction count.
	Evictions() int64
	// Residents appends all cached IDs to dst and returns it; order is
	// unspecified but deterministic for a given history.
	Residents(dst []dataset.SampleID) []dataset.SampleID
}

// entry is a doubly-linked node shared by the list-based policies.
type entry struct {
	id         dataset.SampleID
	size       int
	freq       int64
	prev, next *entry
}

// LRU is a classic least-recently-used policy: the Default baseline's cache
// and the cache under Base.
type LRU struct {
	cap       int64
	used      int64
	items     map[dataset.SampleID]*entry
	head      *entry // most recent
	tail      *entry // least recent
	evictions int64
}

// NewLRU builds an LRU policy with the given byte capacity.
func NewLRU(capacityBytes int64) *LRU {
	if capacityBytes <= 0 {
		panic(fmt.Sprintf("cache: LRU capacity %d", capacityBytes))
	}
	return &LRU{cap: capacityBytes, items: make(map[dataset.SampleID]*entry)}
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

func (l *LRU) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *LRU) pushFront(e *entry) {
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

// Touch implements Policy.
func (l *LRU) Touch(id dataset.SampleID) bool {
	e, ok := l.items[id]
	if !ok {
		return false
	}
	if l.head != e {
		l.unlink(e)
		l.pushFront(e)
	}
	return true
}

// Contains implements Policy.
func (l *LRU) Contains(id dataset.SampleID) bool {
	_, ok := l.items[id]
	return ok
}

// Admit implements Policy. Samples larger than the whole capacity are
// rejected rather than flushing the cache.
func (l *LRU) Admit(id dataset.SampleID, size int) bool {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Admit size %d", size))
	}
	if l.Contains(id) {
		l.Touch(id)
		return true
	}
	if int64(size) > l.cap {
		return false
	}
	for l.used+int64(size) > l.cap {
		victim := l.tail
		l.unlink(victim)
		delete(l.items, victim.id)
		l.used -= int64(victim.size)
		l.evictions++
	}
	e := &entry{id: id, size: size}
	l.items[id] = e
	l.pushFront(e)
	l.used += int64(size)
	return true
}

// Remove implements Policy.
func (l *LRU) Remove(id dataset.SampleID) bool {
	e, ok := l.items[id]
	if !ok {
		return false
	}
	l.unlink(e)
	delete(l.items, id)
	l.used -= int64(e.size)
	return true
}

// Len implements Policy.
func (l *LRU) Len() int { return len(l.items) }

// UsedBytes implements Policy.
func (l *LRU) UsedBytes() int64 { return l.used }

// CapacityBytes implements Policy.
func (l *LRU) CapacityBytes() int64 { return l.cap }

// Evictions implements Policy.
func (l *LRU) Evictions() int64 { return l.evictions }

// Residents implements Policy (most- to least-recently used order).
func (l *LRU) Residents(dst []dataset.SampleID) []dataset.SampleID {
	for e := l.head; e != nil; e = e.next {
		dst = append(dst, e.id)
	}
	return dst
}

// LFU is a least-frequently-used policy with FIFO tie-breaking, backing the
// iLFU baseline of §V-C (IIS plus a frequency cache). The paper's point is
// that frequency is *reactive* to importance changes; the benchmark
// reproduces that lag.
type LFU struct {
	cap       int64
	used      int64
	items     map[dataset.SampleID]*lfuEntry
	heap      []*lfuEntry
	seq       int64
	evictions int64
}

type lfuEntry struct {
	id   dataset.SampleID
	size int
	freq int64
	seq  int64 // admission order, breaks frequency ties FIFO
	pos  int
}

// NewLFU builds an LFU policy with the given byte capacity.
func NewLFU(capacityBytes int64) *LFU {
	if capacityBytes <= 0 {
		panic(fmt.Sprintf("cache: LFU capacity %d", capacityBytes))
	}
	return &LFU{cap: capacityBytes, items: make(map[dataset.SampleID]*lfuEntry)}
}

// Name implements Policy.
func (l *LFU) Name() string { return "lfu" }

func (l *LFU) less(a, b *lfuEntry) bool {
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.seq < b.seq
}

func (l *LFU) swap(i, j int) {
	l.heap[i], l.heap[j] = l.heap[j], l.heap[i]
	l.heap[i].pos = i
	l.heap[j].pos = j
}

func (l *LFU) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !l.less(l.heap[i], l.heap[p]) {
			break
		}
		l.swap(i, p)
		i = p
	}
}

func (l *LFU) down(i int) {
	n := len(l.heap)
	for {
		least := i
		if c := 2*i + 1; c < n && l.less(l.heap[c], l.heap[least]) {
			least = c
		}
		if c := 2*i + 2; c < n && l.less(l.heap[c], l.heap[least]) {
			least = c
		}
		if least == i {
			return
		}
		l.swap(i, least)
		i = least
	}
}

func (l *LFU) removeAt(i int) *lfuEntry {
	e := l.heap[i]
	last := len(l.heap) - 1
	if i != last {
		l.swap(i, last)
	}
	l.heap = l.heap[:last]
	if i < len(l.heap) {
		l.down(i)
		l.up(i)
	}
	delete(l.items, e.id)
	l.used -= int64(e.size)
	return e
}

// Touch implements Policy.
func (l *LFU) Touch(id dataset.SampleID) bool {
	e, ok := l.items[id]
	if !ok {
		return false
	}
	e.freq++
	l.down(e.pos)
	return true
}

// Contains implements Policy.
func (l *LFU) Contains(id dataset.SampleID) bool {
	_, ok := l.items[id]
	return ok
}

// Admit implements Policy.
func (l *LFU) Admit(id dataset.SampleID, size int) bool {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Admit size %d", size))
	}
	if l.Touch(id) {
		return true
	}
	if int64(size) > l.cap {
		return false
	}
	for l.used+int64(size) > l.cap {
		l.removeAt(0)
		l.evictions++
	}
	l.seq++
	e := &lfuEntry{id: id, size: size, freq: 1, seq: l.seq, pos: len(l.heap)}
	l.items[id] = e
	l.heap = append(l.heap, e)
	l.up(e.pos)
	l.used += int64(size)
	return true
}

// Remove implements Policy.
func (l *LFU) Remove(id dataset.SampleID) bool {
	e, ok := l.items[id]
	if !ok {
		return false
	}
	l.removeAt(e.pos)
	return true
}

// Len implements Policy.
func (l *LFU) Len() int { return len(l.items) }

// UsedBytes implements Policy.
func (l *LFU) UsedBytes() int64 { return l.used }

// CapacityBytes implements Policy.
func (l *LFU) CapacityBytes() int64 { return l.cap }

// Evictions implements Policy.
func (l *LFU) Evictions() int64 { return l.evictions }

// Residents implements Policy (heap order).
func (l *LFU) Residents(dst []dataset.SampleID) []dataset.SampleID {
	for _, e := range l.heap {
		dst = append(dst, e.id)
	}
	return dst
}

// MinIO is CoorDL's cache: samples are admitted until the cache fills and
// are then never evicted or replaced ("CoorDL never replaces data items in
// its MinIO cache"). Its hit ratio is pinned at capacity/dataset — and, as
// the paper observes, it has no way to prefer H-samples once full.
type MinIO struct {
	cap   int64
	used  int64
	items map[dataset.SampleID]int
}

// NewMinIO builds a MinIO policy with the given byte capacity.
func NewMinIO(capacityBytes int64) *MinIO {
	if capacityBytes <= 0 {
		panic(fmt.Sprintf("cache: MinIO capacity %d", capacityBytes))
	}
	return &MinIO{cap: capacityBytes, items: make(map[dataset.SampleID]int)}
}

// Name implements Policy.
func (m *MinIO) Name() string { return "minio" }

// Touch implements Policy.
func (m *MinIO) Touch(id dataset.SampleID) bool { return m.Contains(id) }

// Contains implements Policy.
func (m *MinIO) Contains(id dataset.SampleID) bool {
	_, ok := m.items[id]
	return ok
}

// Admit implements Policy: insert-if-room, never evict.
func (m *MinIO) Admit(id dataset.SampleID, size int) bool {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Admit size %d", size))
	}
	if m.Contains(id) {
		return true
	}
	if m.used+int64(size) > m.cap {
		return false
	}
	m.items[id] = size
	m.used += int64(size)
	return true
}

// Remove implements Policy. MinIO never evicts on its own, but the owner may
// still drop entries (e.g. on reconfiguration).
func (m *MinIO) Remove(id dataset.SampleID) bool {
	size, ok := m.items[id]
	if !ok {
		return false
	}
	delete(m.items, id)
	m.used -= int64(size)
	return true
}

// Len implements Policy.
func (m *MinIO) Len() int { return len(m.items) }

// UsedBytes implements Policy.
func (m *MinIO) UsedBytes() int64 { return m.used }

// CapacityBytes implements Policy.
func (m *MinIO) CapacityBytes() int64 { return m.cap }

// Evictions implements Policy (always zero: MinIO never evicts).
func (m *MinIO) Evictions() int64 { return 0 }

// Residents implements Policy (map order — callers must not rely on it).
func (m *MinIO) Residents(dst []dataset.SampleID) []dataset.SampleID {
	for id := range m.items {
		dst = append(dst, id)
	}
	return dst
}

// Unbounded admits everything — the Oracle configuration where the whole
// dataset fits in memory.
type Unbounded struct {
	used  int64
	items map[dataset.SampleID]int
}

// NewUnbounded builds an unbounded policy.
func NewUnbounded() *Unbounded {
	return &Unbounded{items: make(map[dataset.SampleID]int)}
}

// Name implements Policy.
func (u *Unbounded) Name() string { return "unbounded" }

// Touch implements Policy.
func (u *Unbounded) Touch(id dataset.SampleID) bool { return u.Contains(id) }

// Contains implements Policy.
func (u *Unbounded) Contains(id dataset.SampleID) bool {
	_, ok := u.items[id]
	return ok
}

// Admit implements Policy.
func (u *Unbounded) Admit(id dataset.SampleID, size int) bool {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Admit size %d", size))
	}
	if !u.Contains(id) {
		u.items[id] = size
		u.used += int64(size)
	}
	return true
}

// Remove implements Policy.
func (u *Unbounded) Remove(id dataset.SampleID) bool {
	size, ok := u.items[id]
	if !ok {
		return false
	}
	delete(u.items, id)
	u.used -= int64(size)
	return true
}

// Len implements Policy.
func (u *Unbounded) Len() int { return len(u.items) }

// UsedBytes implements Policy.
func (u *Unbounded) UsedBytes() int64 { return u.used }

// CapacityBytes implements Policy (0 = unbounded).
func (u *Unbounded) CapacityBytes() int64 { return 0 }

// Evictions implements Policy.
func (u *Unbounded) Evictions() int64 { return 0 }

// Residents implements Policy.
func (u *Unbounded) Residents(dst []dataset.SampleID) []dataset.SampleID {
	for id := range u.items {
		dst = append(dst, id)
	}
	return dst
}

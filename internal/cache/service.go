package cache

import (
	"fmt"
	"math/rand"
	"time"

	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

// ServiceConfig holds parameters common to every cached data service.
type ServiceConfig struct {
	// HitLatency is the per-sample cost of serving from cache memory: the
	// user-level RPC to the cache server plus the copy. It is paid serially
	// by the fetching worker, like PyTorch workers do.
	HitLatency time.Duration
}

// DefaultServiceConfig matches a same-node user-level cache server.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{HitLatency: 20 * time.Microsecond}
}

// scheduleKind selects which sampler a baseline uses each epoch.
type scheduleKind int

const (
	scheduleUniform scheduleKind = iota // every sample, random order
	scheduleCIS                         // fetch all, compute subset
	scheduleIIS                         // fetch+compute subset
)

// Baseline is a data service combining one cache policy, one sampler kind,
// and optional Quiver-style substitution or Oracle-style zero I/O. It
// implements the train.DataService contract.
type Baseline struct {
	name       string
	kind       scheduleKind
	policy     Policy
	backend    *storage.Backend
	cfg        ServiceConfig
	substitute bool
	zeroIO     bool
	cisCfg     sampling.CISConfig
	iisCfg     sampling.IISConfig

	stats metrics.CacheStats

	// Substitution bookkeeping: a shuffled pool of epoch-start residents,
	// consumed from the tail; each resident substitutes at most once per
	// epoch, and samples used normally are skipped.
	subPool []dataset.SampleID
	used    map[dataset.SampleID]bool
}

// NewDefault returns the paper's Default baseline: PyTorch with a user-level
// LRU cache and uniform sampling.
func NewDefault(backend *storage.Backend, capacityBytes int64, cfg ServiceConfig) *Baseline {
	return &Baseline{name: "default", kind: scheduleUniform, policy: NewLRU(capacityBytes), backend: backend, cfg: cfg}
}

// NewBase returns the Base baseline: the Default LRU cache plus
// computing-oriented importance sampling (all samples fetched, fewer
// computed).
func NewBase(backend *storage.Backend, capacityBytes int64, cfg ServiceConfig, cis sampling.CISConfig) *Baseline {
	return &Baseline{name: "base", kind: scheduleCIS, policy: NewLRU(capacityBytes), backend: backend, cfg: cfg, cisCfg: cis}
}

// NewQuiver returns the Quiver baseline: uniform sampling over an LRU cache
// with sample substitutability — a miss may be served by any cached sample
// that has not yet been used this epoch, regardless of importance (which is
// exactly the accuracy hazard §II-C calls out).
func NewQuiver(backend *storage.Backend, capacityBytes int64, cfg ServiceConfig) *Baseline {
	return &Baseline{name: "quiver", kind: scheduleUniform, policy: NewLRU(capacityBytes), backend: backend, cfg: cfg,
		substitute: true, used: make(map[dataset.SampleID]bool)}
}

// NewCoorDL returns the CoorDL baseline: uniform sampling over a MinIO
// cache that never evicts.
func NewCoorDL(backend *storage.Backend, capacityBytes int64, cfg ServiceConfig) *Baseline {
	return &Baseline{name: "coordl", kind: scheduleUniform, policy: NewMinIO(capacityBytes), backend: backend, cfg: cfg}
}

// NewILFU returns the iLFU baseline of §V-C: IIS reduces fetches like
// iCache, but the cache is managed by reactive frequency counts instead of
// importance values.
func NewILFU(backend *storage.Backend, capacityBytes int64, cfg ServiceConfig, iis sampling.IISConfig) *Baseline {
	return &Baseline{name: "ilfu", kind: scheduleIIS, policy: NewLFU(capacityBytes), backend: backend, cfg: cfg, iisCfg: iis}
}

// NewWithPolicy returns a uniform-sampling service over an arbitrary
// eviction policy — the building block of the policy-comparison experiment
// (every recency/frequency policy collapses under per-epoch reshuffling).
func NewWithPolicy(backend *storage.Backend, policy Policy, cfg ServiceConfig) *Baseline {
	return &Baseline{name: "uniform+" + policy.Name(), kind: scheduleUniform, policy: policy, backend: backend, cfg: cfg}
}

// NewILRU returns the "+IIS" ablation rung of Fig. 10: IIS reduces fetches
// like iCache, but the cache is still a plain LRU with no importance
// awareness and no L-cache.
func NewILRU(backend *storage.Backend, capacityBytes int64, cfg ServiceConfig, iis sampling.IISConfig) *Baseline {
	return &Baseline{name: "ilru", kind: scheduleIIS, policy: NewLRU(capacityBytes), backend: backend, cfg: cfg, iisCfg: iis}
}

// NewOracle returns the Oracle configuration: IIS sampling with the whole
// dataset in memory, i.e. the I/O-free lower bound the paper compares
// against in Fig. 8.
func NewOracle(backend *storage.Backend, cfg ServiceConfig, iis sampling.IISConfig) *Baseline {
	return &Baseline{name: "oracle", kind: scheduleIIS, policy: NewUnbounded(), backend: backend, cfg: cfg,
		zeroIO: true, iisCfg: iis}
}

// NewNoCache returns a cacheless reader: every request goes to the backend.
// With a Tmpfs backend this is the paper's Fig. 2(a) local-DRAM setup.
func NewNoCache(backend *storage.Backend) *NoCache {
	return &NoCache{backend: backend, kind: scheduleUniform}
}

// NewNoCacheCIS returns a cacheless reader under computing-oriented IS
// (Fig. 2's CIS-on-tmpfs configuration).
func NewNoCacheCIS(backend *storage.Backend, cis sampling.CISConfig) *NoCache {
	return &NoCache{backend: backend, kind: scheduleCIS, cisCfg: cis}
}

// NoCache is a data service with no cache at all.
type NoCache struct {
	backend *storage.Backend
	kind    scheduleKind
	cisCfg  sampling.CISConfig
	stats   metrics.CacheStats
}

// Name implements the data-service contract.
func (n *NoCache) Name() string {
	if n.kind == scheduleCIS {
		return "nocache-cis"
	}
	return "nocache"
}

// Stats implements the data-service contract.
func (n *NoCache) Stats() metrics.CacheStats { return n.stats }

// SubstitutionSource implements the accuracy-model contract.
func (n *NoCache) SubstitutionSource() string { return "none" }

// BeginEpoch implements the data-service contract.
func (n *NoCache) BeginEpoch(_ simclock.Time, _ int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule {
	if n.kind == scheduleCIS {
		return sampling.CISSchedule(tr, n.cisCfg, rng)
	}
	return sampling.UniformSchedule(tr.Len(), rng)
}

// FetchBatch implements the data-service contract.
func (n *NoCache) FetchBatch(at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
	served := make([]dataset.SampleID, 0, len(ids))
	for _, id := range ids {
		n.stats.Misses++
		at = n.backend.ReadSample(at, id)
		served = append(served, id)
	}
	return at, served
}

// Name identifies the scheme in experiment output.
func (b *Baseline) Name() string { return b.name }

// Stats returns the cumulative cache counters, with evictions taken from
// the underlying policy.
func (b *Baseline) Stats() metrics.CacheStats {
	s := b.stats
	s.Evictions = b.policy.Evictions()
	return s
}

// Policy exposes the underlying eviction policy (tests and ablations).
func (b *Baseline) Policy() Policy { return b.policy }

// SubstitutionSource implements the accuracy-model contract: Quiver's
// substitution is importance-blind, so it carries the H-cache severity
// class; the other baselines never substitute.
func (b *Baseline) SubstitutionSource() string {
	if b.substitute {
		return "hcache"
	}
	return "none"
}

// BeginEpoch produces the epoch schedule and resets per-epoch substitution
// state.
func (b *Baseline) BeginEpoch(_ simclock.Time, _ int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule {
	if b.substitute {
		b.used = make(map[dataset.SampleID]bool, b.policy.Len())
		b.subPool = b.policy.Residents(b.subPool[:0])
		rng.Shuffle(len(b.subPool), func(i, j int) { b.subPool[i], b.subPool[j] = b.subPool[j], b.subPool[i] })
	}
	switch b.kind {
	case scheduleUniform:
		return sampling.UniformSchedule(tr.Len(), rng)
	case scheduleCIS:
		return sampling.CISSchedule(tr, b.cisCfg, rng)
	case scheduleIIS:
		s, _ := sampling.IISSchedule(tr, b.iisCfg, rng)
		return s
	default:
		panic(fmt.Sprintf("cache: unknown schedule kind %d", b.kind))
	}
}

// pickSubstitute pops an unused, still-resident sample from the epoch pool.
func (b *Baseline) pickSubstitute() (dataset.SampleID, bool) {
	for len(b.subPool) > 0 {
		id := b.subPool[len(b.subPool)-1]
		b.subPool = b.subPool[:len(b.subPool)-1]
		if !b.used[id] && b.policy.Contains(id) {
			return id, true
		}
	}
	return 0, false
}

// FetchBatch simulates one worker fetching the batch sequentially starting
// at virtual time at. It returns the completion time and the samples
// actually delivered to the trainer (substitution may swap IDs).
func (b *Baseline) FetchBatch(at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
	served := make([]dataset.SampleID, 0, len(ids))
	for _, id := range ids {
		if b.zeroIO {
			b.stats.Hits++
			at += b.cfg.HitLatency
			served = append(served, id)
			continue
		}
		if b.policy.Touch(id) {
			b.stats.Hits++
			at += b.cfg.HitLatency
			if b.substitute {
				b.used[id] = true
			}
			served = append(served, id)
			continue
		}
		if b.substitute {
			if sub, ok := b.pickSubstitute(); ok {
				b.stats.Substitutions++
				b.used[sub] = true
				at += b.cfg.HitLatency
				served = append(served, sub)
				continue
			}
		}
		b.stats.Misses++
		at = b.backend.ReadSample(at, id)
		if b.policy.Admit(id, b.backend.Spec().SampleBytes(id)) {
			b.stats.Inserts++
		} else {
			b.stats.Rejections++
		}
		served = append(served, id)
	}
	return at, served
}

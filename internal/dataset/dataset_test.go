package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuiltinSpecsValidate(t *testing.T) {
	for _, s := range []Spec{CIFAR10(), ImageNet(), ImageNetScaled()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{Name: "", NumSamples: 1, MeanSampleBytes: 1},
		{Name: "x", NumSamples: 0, MeanSampleBytes: 1},
		{Name: "x", NumSamples: 1, MeanSampleBytes: 0},
		{Name: "x", NumSamples: 1, MeanSampleBytes: 1, SizeJitterFrac: 1.0},
		{Name: "x", NumSamples: 1, MeanSampleBytes: 1, SizeJitterFrac: -0.1},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate() = nil, want error", i, s)
		}
	}
}

func TestCIFAR10Geometry(t *testing.T) {
	s := CIFAR10()
	if s.NumSamples != 50000 {
		t.Fatalf("NumSamples = %d, want 50000", s.NumSamples)
	}
	if got := s.SampleBytes(0); got != 3073 {
		t.Fatalf("SampleBytes(0) = %d, want 3073", got)
	}
	if got := s.TotalBytes(); got != int64(50000)*3073 {
		t.Fatalf("TotalBytes = %d, want %d", got, int64(50000)*3073)
	}
}

func TestImageNetSizeDistribution(t *testing.T) {
	s := ImageNetScaled()
	var sum float64
	minSz, maxSz := math.MaxInt, 0
	for id := 0; id < 10000; id++ {
		n := s.SampleBytes(SampleID(id))
		sum += float64(n)
		if n < minSz {
			minSz = n
		}
		if n > maxSz {
			maxSz = n
		}
	}
	mean := sum / 10000
	if math.Abs(mean-float64(s.MeanSampleBytes)) > 0.05*float64(s.MeanSampleBytes) {
		t.Errorf("empirical mean %0.f deviates >5%% from spec mean %d", mean, s.MeanSampleBytes)
	}
	lo := float64(s.MeanSampleBytes) * (1 - s.SizeJitterFrac)
	hi := float64(s.MeanSampleBytes) * (1 + s.SizeJitterFrac)
	if float64(minSz) < lo-1 || float64(maxSz) > hi+1 {
		t.Errorf("sizes [%d,%d] outside jitter bounds [%.0f,%.0f]", minSz, maxSz, lo, hi)
	}
	if minSz == maxSz {
		t.Error("jittered dataset produced constant sizes")
	}
}

func TestSampleBytesDeterministic(t *testing.T) {
	s := ImageNet()
	for _, id := range []SampleID{0, 1, 999, 1281166} {
		if a, b := s.SampleBytes(id), s.SampleBytes(id); a != b {
			t.Fatalf("SampleBytes(%d) nondeterministic: %d vs %d", id, a, b)
		}
	}
}

func TestContains(t *testing.T) {
	s := CIFAR10()
	if s.Contains(-1) || s.Contains(50000) {
		t.Error("Contains accepted out-of-range IDs")
	}
	if !s.Contains(0) || !s.Contains(49999) {
		t.Error("Contains rejected valid IDs")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := CIFAR10()
	for name, fn := range map[string]func(){
		"SampleBytes": func() { s.SampleBytes(50000) },
		"Difficulty":  func() { s.Difficulty(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad ID did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDifficultyRangeAndSkew(t *testing.T) {
	s := CIFAR10()
	var sum float64
	hard := 0
	for id := 0; id < s.NumSamples; id++ {
		d := s.Difficulty(SampleID(id))
		if d <= 0 || d >= 1 {
			t.Fatalf("Difficulty(%d) = %g, want (0,1)", id, d)
		}
		sum += d
		if d > 0.5 {
			hard++
		}
	}
	mean := sum / float64(s.NumSamples)
	if mean > 0.45 {
		t.Errorf("mean difficulty %g — distribution should be skewed easy (<0.45)", mean)
	}
	frac := float64(hard) / float64(s.NumSamples)
	if frac < 0.1 || frac > 0.5 {
		t.Errorf("hard fraction %g, want a real minority in [0.1,0.5]", frac)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	s := ImageNetScaled()
	for _, id := range []SampleID{0, 7, 12345, SampleID(s.NumSamples - 1)} {
		p := s.Payload(id)
		if len(p) != s.SampleBytes(id) {
			t.Fatalf("Payload(%d) length %d, want %d", id, len(p), s.SampleBytes(id))
		}
		if err := s.VerifyPayload(id, p); err != nil {
			t.Fatalf("VerifyPayload(%d): %v", id, err)
		}
	}
}

func TestVerifyPayloadDetectsCorruption(t *testing.T) {
	s := CIFAR10()
	p := s.Payload(42)
	if err := s.VerifyPayload(43, p); err == nil {
		t.Error("payload of 42 verified as 43")
	}
	p[0] ^= 0xFF
	if err := s.VerifyPayload(42, p); err == nil {
		t.Error("header corruption went undetected")
	}
	p = s.Payload(42)
	p[len(p)-1] ^= 0xFF
	if err := s.VerifyPayload(42, p); err == nil {
		t.Error("tail corruption went undetected")
	}
	if err := s.VerifyPayload(42, p[:10]); err == nil {
		t.Error("truncated payload went undetected")
	}
}

func TestPayloadsDifferAcrossSamples(t *testing.T) {
	s := CIFAR10()
	a, b := s.Payload(1), s.Payload(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Errorf("payloads of distinct samples agree on %d/%d bytes", same, len(a))
	}
}

func TestAllIDsDense(t *testing.T) {
	s := Spec{Name: "tiny", NumSamples: 5, MeanSampleBytes: 10}
	ids := s.AllIDs()
	if len(ids) != 5 {
		t.Fatalf("len = %d, want 5", len(ids))
	}
	for i, id := range ids {
		if id != SampleID(i) {
			t.Fatalf("ids[%d] = %d, want %d", i, id, i)
		}
	}
}

func TestUnitUniformity(t *testing.T) {
	const n = 100000
	buckets := make([]int, 10)
	for i := uint64(0); i < n; i++ {
		u := Unit(i, 99)
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of range: %g", u)
		}
		buckets[int(u*10)]++
	}
	for b, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d has %d of %d — not uniform", b, c, n)
		}
	}
}

func TestUnitSaltDecorrelates(t *testing.T) {
	f := func(x uint64) bool {
		return Unit(x, 1) != Unit(x, 2) || Unit(x+1, 1) != Unit(x+1, 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalBytesJitteredMatchesSum(t *testing.T) {
	s := Spec{Name: "j", NumSamples: 1000, MeanSampleBytes: 500, SizeJitterFrac: 0.3, Seed: 7}
	var want int64
	for id := 0; id < s.NumSamples; id++ {
		want += int64(s.SampleBytes(SampleID(id)))
	}
	if got := s.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
}

// Package dataset provides the synthetic training datasets used throughout
// the reproduction.
//
// The paper evaluates on CIFAR10 (50 000 samples, ~3 KB each) and ImageNet-1K
// (1 281 167 samples, ~110 KB each, 140 GB total). Neither raw dataset is
// available offline, and none of the cache behaviour the paper measures
// depends on pixel content — only on sample counts, sizes, and the access
// order induced by the sampler. This package therefore generates datasets
// with the real cardinalities and size distributions and fully deterministic
// per-sample payloads, so the RPC path can serve real bytes and tests can
// verify end-to-end integrity.
package dataset

import (
	"fmt"
	"math"
)

// SampleID identifies a sample within a dataset. IDs are dense: a dataset
// with n samples uses IDs 0..n-1, matching how PyTorch datasets index.
type SampleID int64

// Spec describes a synthetic dataset. The zero value is not usable; build
// specs with the constructors or fill every field.
type Spec struct {
	// Name labels the dataset in experiment output, e.g. "cifar10".
	Name string
	// NumSamples is the dataset cardinality.
	NumSamples int
	// MeanSampleBytes is the average encoded sample size.
	MeanSampleBytes int
	// SizeJitterFrac is the ± fractional spread of per-sample sizes around
	// the mean (0 gives fixed-size samples).
	SizeJitterFrac float64
	// Seed decorrelates datasets that otherwise share parameters.
	Seed uint64
}

// CIFAR10 returns a spec with CIFAR10's real geometry: 50 000 samples of
// 3 073 bytes (32×32×3 pixels + label) with no size variance.
func CIFAR10() Spec {
	return Spec{Name: "cifar10", NumSamples: 50000, MeanSampleBytes: 3073, SizeJitterFrac: 0, Seed: 0xC1FA}
}

// ImageNet returns a spec with ImageNet-1K's real geometry: 1 281 167 JPEG
// samples averaging ~110 KB with substantial size variance.
func ImageNet() Spec {
	return Spec{Name: "imagenet", NumSamples: 1281167, MeanSampleBytes: 110 * 1024, SizeJitterFrac: 0.45, Seed: 0x1A6E}
}

// ImageNetScaled returns a 10%-cardinality ImageNet surrogate used by the
// default experiment configurations so a full evaluation sweep stays fast.
// Per-sample geometry is unchanged; only the count shrinks, and every
// experiment scales its cache budget as a fraction of the dataset, so cache
// dynamics are preserved.
func ImageNetScaled() Spec {
	return Spec{Name: "imagenet-10pct", NumSamples: 128116, MeanSampleBytes: 110 * 1024, SizeJitterFrac: 0.45, Seed: 0x1A6E}
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("dataset: empty name")
	case s.NumSamples <= 0:
		return fmt.Errorf("dataset %q: NumSamples=%d, want > 0", s.Name, s.NumSamples)
	case s.MeanSampleBytes <= 0:
		return fmt.Errorf("dataset %q: MeanSampleBytes=%d, want > 0", s.Name, s.MeanSampleBytes)
	case s.SizeJitterFrac < 0 || s.SizeJitterFrac >= 1:
		return fmt.Errorf("dataset %q: SizeJitterFrac=%g, want [0,1)", s.Name, s.SizeJitterFrac)
	}
	return nil
}

// Contains reports whether id is a valid sample ID for the dataset.
func (s Spec) Contains(id SampleID) bool {
	return id >= 0 && int64(id) < int64(s.NumSamples)
}

// SampleBytes returns the deterministic encoded size of a sample.
func (s Spec) SampleBytes(id SampleID) int {
	if !s.Contains(id) {
		panic(fmt.Sprintf("dataset %q: sample %d out of range [0,%d)", s.Name, id, s.NumSamples))
	}
	if s.SizeJitterFrac == 0 {
		return s.MeanSampleBytes
	}
	u := Unit(uint64(id), s.Seed^0x5126) // uniform [0,1)
	f := 1 + s.SizeJitterFrac*(2*u-1)    // uniform in [1-j, 1+j)
	n := int(math.Round(float64(s.MeanSampleBytes) * f))
	if n < 1 {
		n = 1
	}
	return n
}

// TotalBytes returns the exact summed size of the dataset. It is O(n) for
// jittered datasets and O(1) otherwise.
func (s Spec) TotalBytes() int64 {
	if s.SizeJitterFrac == 0 {
		return int64(s.NumSamples) * int64(s.MeanSampleBytes)
	}
	var total int64
	for id := 0; id < s.NumSamples; id++ {
		total += int64(s.SampleBytes(SampleID(id)))
	}
	return total
}

// Difficulty returns the intrinsic learning difficulty of a sample in (0,1).
// The training-loss model in internal/train derives each sample's loss
// trajectory from this value: hard samples keep high losses (and hence high
// importance) for longer. The distribution is right-skewed — most samples
// are easy, a minority are hard — which matches the empirical loss
// distributions the loss-based importance-sampling literature reports.
func (s Spec) Difficulty(id SampleID) float64 {
	if !s.Contains(id) {
		panic(fmt.Sprintf("dataset %q: sample %d out of range [0,%d)", s.Name, id, s.NumSamples))
	}
	u := Unit(uint64(id), s.Seed^0xD1FF)
	// Square the uniform to skew mass toward easy samples, then keep the
	// value strictly inside (0,1) so downstream math never divides by zero.
	d := u * u
	return 0.02 + 0.96*d
}

// Payload materializes the deterministic byte content of a sample. The first
// 8 bytes encode the sample ID so integrity checks can detect mixed-up
// responses on the RPC path; the remainder is a cheap xorshift stream.
func (s Spec) Payload(id SampleID) []byte {
	n := s.SampleBytes(id)
	buf := make([]byte, n)
	state := mix(uint64(id), s.Seed^0x9A71)
	for i := 0; i < n && i < 8; i++ {
		buf[i] = byte(uint64(id) >> (8 * i))
	}
	for i := 8; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		buf[i] = byte(state)
	}
	return buf
}

// VerifyPayload checks that buf is the payload of sample id: it must have
// the right length and embed the ID in its header. Content beyond the header
// is spot-checked at a few offsets rather than fully regenerated.
func (s Spec) VerifyPayload(id SampleID, buf []byte) error {
	want := s.SampleBytes(id)
	if len(buf) != want {
		return fmt.Errorf("dataset %q sample %d: payload length %d, want %d", s.Name, id, len(buf), want)
	}
	for i := 0; i < want && i < 8; i++ {
		if buf[i] != byte(uint64(id)>>(8*i)) {
			return fmt.Errorf("dataset %q sample %d: payload header mismatch at byte %d", s.Name, id, i)
		}
	}
	if want > 8 {
		ref := s.Payload(id)
		for _, off := range []int{8, want / 2, want - 1} {
			if buf[off] != ref[off] {
				return fmt.Errorf("dataset %q sample %d: payload body mismatch at byte %d", s.Name, id, off)
			}
		}
	}
	return nil
}

// AllIDs returns the dense ID list 0..n-1. Callers that only iterate should
// prefer a plain loop; this helper exists for samplers that shuffle a copy.
func (s Spec) AllIDs() []SampleID {
	ids := make([]SampleID, s.NumSamples)
	for i := range ids {
		ids[i] = SampleID(i)
	}
	return ids
}

// Unit hashes (x, salt) to a uniform float64 in [0, 1). It is the shared
// deterministic randomness primitive for per-sample traits; using a hash
// instead of a sequential PRNG keeps every trait addressable by ID alone.
func Unit(x, salt uint64) float64 {
	h := mix(x, salt)
	return float64(h>>11) / float64(1<<53)
}

// mix is splitmix64's finalizer applied to x blended with salt.
func mix(x, salt uint64) uint64 {
	z := x + salt + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"icache/internal/dataset"
)

// FileSource serves sample payloads from a packed dataset file on local
// disk — the deployment where the dataset has been materialized (e.g. by
// cmd/icache-gen) instead of generated on the fly. The file layout is a
// fixed-size index followed by concatenated payloads, so any sample is one
// seek + one read, like the per-file layout DNN datasets use.
//
// File format (all big-endian):
//
//	magic  [8]byte  "ICACHDS1"
//	count  uint64
//	name   uint32-prefixed string
//	index  count × (offset uint64, length uint32)
//	data   concatenated payloads
type FileSource struct {
	spec dataset.Spec

	mu    sync.Mutex
	f     *os.File
	index []indexEntry
	reads int64
}

type indexEntry struct {
	off uint64
	len uint32
}

var fileMagic = [8]byte{'I', 'C', 'A', 'C', 'H', 'D', 'S', '1'}

// WriteDatasetFile materializes a spec's payloads into a packed file.
func WriteDatasetFile(path string, spec dataset.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	if _, err := f.Write(fileMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(spec.NumSamples))
	if _, err := f.Write(hdr[:]); err != nil {
		return err
	}
	var nameLen [4]byte
	binary.BigEndian.PutUint32(nameLen[:], uint32(len(spec.Name)))
	if _, err := f.Write(nameLen[:]); err != nil {
		return err
	}
	if _, err := f.Write([]byte(spec.Name)); err != nil {
		return err
	}

	// Index first (fixed size), then payloads.
	indexStart := int64(8 + 8 + 4 + len(spec.Name))
	dataStart := indexStart + int64(spec.NumSamples)*12
	index := make([]byte, spec.NumSamples*12)
	off := uint64(dataStart)
	for i := 0; i < spec.NumSamples; i++ {
		n := uint32(spec.SampleBytes(dataset.SampleID(i)))
		binary.BigEndian.PutUint64(index[i*12:], off)
		binary.BigEndian.PutUint32(index[i*12+8:], n)
		off += uint64(n)
	}
	if _, err := f.Write(index); err != nil {
		return err
	}
	for i := 0; i < spec.NumSamples; i++ {
		if _, err := f.Write(spec.Payload(dataset.SampleID(i))); err != nil {
			return err
		}
	}
	return f.Close()
}

// OpenFileSource opens a packed dataset file and validates it against spec.
func OpenFileSource(path string, spec dataset.Spec) (*FileSource, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fs := &FileSource{spec: spec, f: f}
	if err := fs.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

func (fs *FileSource) readHeader() error {
	var magic [8]byte
	if _, err := fs.f.ReadAt(magic[:], 0); err != nil {
		return fmt.Errorf("storage: dataset file header: %w", err)
	}
	if magic != fileMagic {
		return fmt.Errorf("storage: not an iCache dataset file")
	}
	var hdr [12]byte
	if _, err := fs.f.ReadAt(hdr[:], 8); err != nil {
		return err
	}
	count := binary.BigEndian.Uint64(hdr[:8])
	if count != uint64(fs.spec.NumSamples) {
		return fmt.Errorf("storage: dataset file has %d samples, spec %q has %d", count, fs.spec.Name, fs.spec.NumSamples)
	}
	nameLen := binary.BigEndian.Uint32(hdr[8:])
	if nameLen > 4096 {
		return fmt.Errorf("storage: unreasonable dataset name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := fs.f.ReadAt(name, 20); err != nil {
		return err
	}
	if string(name) != fs.spec.Name {
		return fmt.Errorf("storage: dataset file is %q, spec is %q", name, fs.spec.Name)
	}
	indexStart := int64(20 + nameLen)
	raw := make([]byte, count*12)
	if _, err := fs.f.ReadAt(raw, indexStart); err != nil {
		return fmt.Errorf("storage: dataset index: %w", err)
	}
	fs.index = make([]indexEntry, count)
	for i := range fs.index {
		fs.index[i] = indexEntry{
			off: binary.BigEndian.Uint64(raw[i*12:]),
			len: binary.BigEndian.Uint32(raw[i*12+8:]),
		}
	}
	return nil
}

// Spec returns the dataset this source serves.
func (fs *FileSource) Spec() dataset.Spec { return fs.spec }

// Fetch reads one sample's payload from disk.
func (fs *FileSource) Fetch(id dataset.SampleID) ([]byte, error) {
	if !fs.spec.Contains(id) {
		return nil, fmt.Errorf("storage: sample %d out of range for dataset %q", id, fs.spec.Name)
	}
	e := fs.index[id]
	buf := make([]byte, e.len)
	if _, err := fs.f.ReadAt(buf, int64(e.off)); err != nil {
		return nil, fmt.Errorf("storage: read sample %d: %w", id, err)
	}
	fs.mu.Lock()
	fs.reads++
	fs.mu.Unlock()
	return buf, nil
}

// Reads reports how many samples were fetched.
func (fs *FileSource) Reads() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.reads
}

// Close releases the file handle.
func (fs *FileSource) Close() error { return fs.f.Close() }

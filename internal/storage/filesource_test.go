package storage

import (
	"os"
	"path/filepath"
	"testing"

	"icache/internal/dataset"
)

func fileSpec() dataset.Spec {
	return dataset.Spec{Name: "fsrc", NumSamples: 500, MeanSampleBytes: 700, SizeJitterFrac: 0.3, Seed: 31}
}

func TestFileSourceRoundTrip(t *testing.T) {
	spec := fileSpec()
	path := filepath.Join(t.TempDir(), "ds.pack")
	if err := WriteDatasetFile(path, spec); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for _, id := range []dataset.SampleID{0, 1, 250, 499} {
		buf, err := fs.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.VerifyPayload(id, buf); err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}
	}
	if fs.Reads() != 4 {
		t.Fatalf("Reads = %d", fs.Reads())
	}
	if _, err := fs.Fetch(500); err == nil {
		t.Fatal("out-of-range fetch succeeded")
	}
}

func TestFileSourceRejectsMismatchedSpec(t *testing.T) {
	spec := fileSpec()
	path := filepath.Join(t.TempDir(), "ds.pack")
	if err := WriteDatasetFile(path, spec); err != nil {
		t.Fatal(err)
	}
	wrongCount := spec
	wrongCount.NumSamples = 400
	if _, err := OpenFileSource(path, wrongCount); err == nil {
		t.Fatal("wrong count accepted")
	}
	wrongName := spec
	wrongName.Name = "other"
	if _, err := OpenFileSource(path, wrongName); err == nil {
		t.Fatal("wrong name accepted")
	}
}

func TestFileSourceRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("definitely not a dataset"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileSource(path, fileSpec()); err == nil {
		t.Fatal("garbage file accepted")
	}
	if _, err := OpenFileSource(filepath.Join(t.TempDir(), "absent"), fileSpec()); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFileSourceTruncatedFile(t *testing.T) {
	spec := fileSpec()
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.pack")
	if err := WriteDatasetFile(path, spec); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(dir, "short.pack")
	if err := os.WriteFile(short, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(short, spec)
	if err != nil {
		// Truncation inside the index: rejected at open — fine.
		return
	}
	defer fs.Close()
	// Truncation in the data region: the read must fail, not return junk.
	if buf, err := fs.Fetch(dataset.SampleID(spec.NumSamples - 1)); err == nil {
		if verr := spec.VerifyPayload(dataset.SampleID(spec.NumSamples-1), buf); verr == nil {
			t.Fatal("truncated file served a valid-looking tail sample")
		}
	}
}

package storage

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"icache/internal/dataset"
	"icache/internal/faults"
	"icache/internal/simclock"
)

func testSpec() dataset.Spec {
	return dataset.Spec{Name: "t", NumSamples: 1000, MeanSampleBytes: 4096, Seed: 1}
}

func mustBackend(t *testing.T, spec dataset.Spec, cfg Config) *Backend {
	t.Helper()
	b, err := NewBackend(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{OrangeFS(), NFS(), Tmpfs()} {
		if err := c.Validate(); err != nil {
			t.Errorf("builtin config invalid: %v", err)
		}
	}
	bad := OrangeFS()
	bad.Servers = 0
	if err := bad.Validate(); err == nil {
		t.Error("Servers=0 validated")
	}
	bad = OrangeFS()
	bad.LinkBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("LinkBandwidth=0 validated")
	}
}

func TestNewBackendRejectsBadInput(t *testing.T) {
	if _, err := NewBackend(dataset.Spec{}, OrangeFS()); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := NewBackend(testSpec(), Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestReadSampleCostIncludesOverheadAndTransfer(t *testing.T) {
	cfg := Config{Servers: 1, StripeBytes: 64 << 10, PerReadOverhead: time.Millisecond,
		ServerBandwidth: 1e6, LinkBandwidth: 1e6, ServerParallelism: 1}
	b := mustBackend(t, testSpec(), cfg)
	end := b.ReadSample(0, 0)
	// 1ms overhead + 4096B at 1MB/s server + 4096B at 1MB/s link ≈ 1ms + 2×4.096ms
	want := time.Millisecond + 2*4096*time.Microsecond
	if diff := end - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("completion = %v, want ≈ %v", end, want)
	}
}

func TestSequentialReadsQueue(t *testing.T) {
	b := mustBackend(t, testSpec(), Config{Servers: 1, StripeBytes: 64 << 10,
		PerReadOverhead: time.Millisecond, ServerBandwidth: 1e9, LinkBandwidth: 1e9, ServerParallelism: 1})
	e1 := b.ReadSample(0, 0)
	e2 := b.ReadSample(0, 1) // same instant: must wait behind the first
	if e2 <= e1 {
		t.Fatalf("second concurrent read finished at %v, not after first at %v", e2, e1)
	}
}

func TestStripingSpreadsLoad(t *testing.T) {
	// With 4 servers, 4 concurrent single-stripe reads of consecutive IDs
	// land on distinct servers and finish at nearly the same time.
	cfg := Config{Servers: 4, StripeBytes: 64 << 10, PerReadOverhead: time.Millisecond,
		ServerBandwidth: 1e9, LinkBandwidth: 1e12, ServerParallelism: 1}
	b := mustBackend(t, testSpec(), cfg)
	var ends []simclock.Time
	for id := 0; id < 4; id++ {
		ends = append(ends, b.ReadSample(0, dataset.SampleID(id)))
	}
	for _, e := range ends {
		if e > 2*time.Millisecond {
			t.Fatalf("parallel reads serialized: end=%v", e)
		}
	}
}

func TestPackageReadBeatsRandomReads(t *testing.T) {
	// The whole point of dynamic packaging: one big sequential read must be
	// much cheaper than reading the same bytes as small random I/Os.
	spec := testSpec()
	cfg := OrangeFS()
	const n = 256 // samples per package
	pkgBytes := n * spec.MeanSampleBytes

	random := mustBackend(t, spec, cfg)
	var at simclock.Time
	for id := 0; id < n; id++ {
		at = random.ReadSample(at, dataset.SampleID(id))
	}

	pkg := mustBackend(t, spec, cfg)
	pkgEnd := pkg.ReadPackage(0, pkgBytes)

	if pkgEnd*10 > at {
		t.Fatalf("package read %v not ≥10× faster than %v of random reads", pkgEnd, at)
	}
}

func TestReadPackageZeroBytesFree(t *testing.T) {
	b := mustBackend(t, testSpec(), OrangeFS())
	if end := b.ReadPackage(5*time.Millisecond, 0); end != 5*time.Millisecond {
		t.Fatalf("zero-byte package took time: %v", end)
	}
	if b.Stats().PackageReads != 0 {
		t.Fatal("zero-byte package counted")
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	b := mustBackend(t, testSpec(), OrangeFS())
	b.ReadSample(0, 1)
	b.ReadPackage(0, 1<<20)
	s := b.Stats()
	if s.SampleReads != 1 || s.PackageReads != 1 {
		t.Fatalf("stats = %+v, want 1 sample + 1 package", s)
	}
	if s.BytesRead != int64(testSpec().MeanSampleBytes)+1<<20 {
		t.Fatalf("BytesRead = %d", s.BytesRead)
	}
	b.ResetStats()
	if b.Stats() != (Stats{}) {
		t.Fatal("ResetStats left residue")
	}
	busy := b.link.BusyUntil()
	if busy == 0 {
		t.Fatal("link should still be busy after ResetStats")
	}
	b.Reset()
	if b.link.BusyUntil() != 0 {
		t.Fatal("Reset did not idle the link")
	}
}

func TestTmpfsMuchFasterThanOrangeFS(t *testing.T) {
	spec := testSpec()
	remote := mustBackend(t, spec, OrangeFS())
	local := mustBackend(t, spec, Tmpfs())
	var rEnd, lEnd simclock.Time
	for id := 0; id < 100; id++ {
		rEnd = remote.ReadSample(rEnd, dataset.SampleID(id))
		lEnd = local.ReadSample(lEnd, dataset.SampleID(id))
	}
	if lEnd*50 > rEnd {
		t.Fatalf("tmpfs (%v) not ≥50× faster than OrangeFS (%v)", lEnd, rEnd)
	}
}

func TestLargeSampleStripes(t *testing.T) {
	// A 1 MB sample on 4 servers should beat the single-server transfer time.
	spec := dataset.Spec{Name: "big", NumSamples: 10, MeanSampleBytes: 1 << 20, Seed: 3}
	multi := mustBackend(t, spec, Config{Servers: 4, StripeBytes: 64 << 10,
		PerReadOverhead: 0, ServerBandwidth: 1e8, LinkBandwidth: 1e12, ServerParallelism: 1})
	single := mustBackend(t, spec, Config{Servers: 1, StripeBytes: 64 << 10,
		PerReadOverhead: 0, ServerBandwidth: 1e8, LinkBandwidth: 1e12, ServerParallelism: 1})
	if m, s := multi.ReadSample(0, 0), single.ReadSample(0, 0); m*2 > s {
		t.Fatalf("striped large read %v not ≥2× faster than single-server %v", m, s)
	}
}

// Property: completion is never before arrival and cost is monotone in size.
func TestReadMonotonicityProperty(t *testing.T) {
	cfg := OrangeFS()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := testSpec()
		b, err := NewBackend(spec, cfg)
		if err != nil {
			return false
		}
		var at simclock.Time
		for i := 0; i < 100; i++ {
			at += time.Duration(rng.Intn(100)) * time.Microsecond
			end := b.ReadSample(at, dataset.SampleID(rng.Intn(spec.NumSamples)))
			if end < at {
				return false
			}
		}
		// Bigger packages take at least as long from a fresh backend.
		b1, _ := NewBackend(spec, cfg)
		b2, _ := NewBackend(spec, cfg)
		small := b1.ReadPackage(0, 1<<20)
		big := b2.ReadPackage(0, 4<<20)
		return big >= small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDataSourceFetch(t *testing.T) {
	src, err := NewDataSource(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := src.Fetch(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Spec().VerifyPayload(7, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Fetch(-1); err == nil {
		t.Error("out-of-range fetch succeeded")
	}
	if src.Reads() != 1 {
		t.Errorf("Reads = %d, want 1 (out-of-range fetches are not served)", src.Reads())
	}
}

func TestDataSourceFailureInjection(t *testing.T) {
	src, _ := NewDataSource(testSpec())
	boom := errors.New("disk on fire")
	src.FailNext(2, boom)
	for i := 0; i < 2; i++ {
		if _, err := src.Fetch(0); !errors.Is(err, boom) {
			t.Fatalf("fetch %d: err = %v, want injected", i, err)
		}
	}
	if _, err := src.Fetch(0); err != nil {
		t.Fatalf("fetch after injections exhausted: %v", err)
	}
}

// TestDataSourceConcurrentFailureInjection hammers Fetch from many
// goroutines while FailNext re-arms concurrently — the scenario of the
// async L-cache loader fetching while a test injects failures. Run under
// -race this guards the injector migration; functionally it checks that
// every call either serves a valid payload or the injected error.
func TestDataSourceConcurrentFailureInjection(t *testing.T) {
	src, err := NewDataSource(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			src.FailNext(1, boom)
		}
	}()
	var wg sync.WaitGroup
	errs := make([]int64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				payload, err := src.Fetch(dataset.SampleID(i % 100))
				switch {
				case err == nil:
					if len(payload) == 0 {
						t.Errorf("worker %d: empty payload without error", w)
						return
					}
				case errors.Is(err, boom):
					errs[w]++
				default:
					t.Errorf("worker %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-done
	var total int64
	for _, n := range errs {
		total += n
	}
	if total == 0 {
		t.Error("no injected failure was observed despite 200 armed")
	}
	if total > 200 {
		t.Errorf("%d injected failures observed, only 200 armed", total)
	}
}

// TestBackendFaultDelaySlowsReads verifies the injector's delay action
// stretches a read's virtual-time cost without touching fault-free reads.
func TestBackendFaultDelaySlowsReads(t *testing.T) {
	spec := testSpec()
	clean := mustBackend(t, spec, NFS())
	faulty := mustBackend(t, spec, NFS())
	faulty.SetFaultInjector(faults.New(1).Add(
		faults.Rule{Op: faults.OpBackendRead, FromTime: 1, Action: faults.ActDelay, Delay: 50 * time.Millisecond},
	))

	cleanEnd := clean.ReadSample(time.Second, 7)
	faultyEnd := faulty.ReadSample(time.Second, 7)
	if faultyEnd <= cleanEnd {
		t.Fatalf("faulted read finished at %v, clean at %v; want slower", faultyEnd, cleanEnd)
	}
	if got, want := faultyEnd-cleanEnd, 50*time.Millisecond; got != want {
		t.Fatalf("injected delay %v, want %v", got, want)
	}
	// Outside the schedule (injector detached) reads cost the same again.
	faulty.SetFaultInjector(nil)
	if a, b := clean.ReadSample(2*time.Second, 8), faulty.ReadSample(2*time.Second+50*time.Millisecond, 8); b-a != 50*time.Millisecond {
		t.Fatalf("detached injector still perturbing reads (%v vs %v)", a, b)
	}
}

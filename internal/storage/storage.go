// Package storage models the backend storage systems the paper trains
// against: an OrangeFS-like striped parallel file system, a single NFS
// server (used by the paper's distributed-cloud experiment), and a local
// DRAM tmpfs (used by the paper's Fig. 2 motivation experiment).
//
// Everything here runs in virtual time (see internal/simclock). A read is a
// trip through two FIFO resources — the owning storage server(s) and the
// client's network link — so concurrent fetchers, background package loads,
// and co-located training jobs all contend exactly where real ones would:
// at the server queue and on the wire.
//
// The package also provides DataSource, the real-bytes side used by the TCP
// cache server: deterministic payload generation plus failure injection.
package storage

import (
	"fmt"
	"sync"
	"time"

	"icache/internal/dataset"
	"icache/internal/faults"
	"icache/internal/simclock"
)

// Config parameterizes a simulated backend.
type Config struct {
	// Servers is the number of storage servers the dataset is striped over.
	// 1 models a single NFS server.
	Servers int
	// StripeBytes is the striping unit (the paper uses 64 KB in OrangeFS).
	StripeBytes int
	// PerReadOverhead is the fixed per-request cost: client RPC, server
	// dispatch, and media seek. This is what makes small random reads slow.
	PerReadOverhead time.Duration
	// ServerBandwidth is each server's streaming throughput in bytes/sec.
	ServerBandwidth float64
	// LinkBandwidth is the client-side network bandwidth in bytes/sec
	// (10 Gb/s in the paper's testbed).
	LinkBandwidth float64
	// ServerParallelism is how many requests one server serves concurrently.
	ServerParallelism int
}

// OrangeFS returns the paper's default backend: four servers, 64 KB stripes,
// 10 GbE. The per-read overhead is calibrated so that random small-sample
// reads are IOPS-bound, the regime every experiment in the paper sits in.
func OrangeFS() Config {
	return Config{
		Servers:           4,
		StripeBytes:       64 * 1024,
		PerReadOverhead:   1500 * time.Microsecond,
		ServerBandwidth:   400e6,  // 400 MB/s per server
		LinkBandwidth:     1.25e9, // 10 Gb/s
		ServerParallelism: 4,
	}
}

// NFS returns a single-server NFS-like backend with ~10 Gb/s peak read
// bandwidth, matching the cloud setup of the paper's §V-G.
func NFS() Config {
	return Config{
		Servers:           1,
		StripeBytes:       1 << 20,
		PerReadOverhead:   2 * time.Millisecond,
		ServerBandwidth:   1.25e9,
		LinkBandwidth:     1.25e9,
		ServerParallelism: 8,
	}
}

// Tmpfs returns a local-DRAM filesystem model: negligible overhead, memory
// bandwidth. Used to reproduce the paper's Fig. 2(a), where I/O is not the
// bottleneck.
func Tmpfs() Config {
	return Config{
		Servers:           1,
		StripeBytes:       1 << 20,
		PerReadOverhead:   2 * time.Microsecond,
		ServerBandwidth:   20e9,
		LinkBandwidth:     20e9,
		ServerParallelism: 16,
	}
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	switch {
	case c.Servers <= 0:
		return fmt.Errorf("storage: Servers=%d, want > 0", c.Servers)
	case c.StripeBytes <= 0:
		return fmt.Errorf("storage: StripeBytes=%d, want > 0", c.StripeBytes)
	case c.PerReadOverhead < 0:
		return fmt.Errorf("storage: negative PerReadOverhead %v", c.PerReadOverhead)
	case c.ServerBandwidth <= 0:
		return fmt.Errorf("storage: ServerBandwidth=%g, want > 0", c.ServerBandwidth)
	case c.LinkBandwidth <= 0:
		return fmt.Errorf("storage: LinkBandwidth=%g, want > 0", c.LinkBandwidth)
	case c.ServerParallelism <= 0:
		return fmt.Errorf("storage: ServerParallelism=%d, want > 0", c.ServerParallelism)
	}
	return nil
}

// Stats aggregates the traffic a backend has served.
type Stats struct {
	SampleReads  int64
	PackageReads int64
	BytesRead    int64
}

// Backend is a simulated storage system holding one dataset.
type Backend struct {
	spec    dataset.Spec
	cfg     Config
	servers []*simclock.Pool
	link    *simclock.Resource
	stats   Stats
	inj     *faults.Injector
}

// NewBackend builds a backend for the dataset described by spec.
func NewBackend(spec dataset.Spec, cfg Config) (*Backend, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Backend{spec: spec, cfg: cfg, link: &simclock.Resource{}}
	b.servers = make([]*simclock.Pool, cfg.Servers)
	for i := range b.servers {
		b.servers[i] = simclock.NewPool(cfg.ServerParallelism)
	}
	return b, nil
}

// Spec returns the dataset this backend stores.
func (b *Backend) Spec() dataset.Spec { return b.spec }

// Config returns the backend's cost-model parameters.
func (b *Backend) Config() Config { return b.cfg }

// Stats returns a copy of the traffic counters.
func (b *Backend) Stats() Stats { return b.stats }

// ResetStats zeroes the traffic counters without idling the resources.
func (b *Backend) ResetStats() { b.stats = Stats{} }

// Reset idles every resource and zeroes counters, returning the backend to
// its initial state for a fresh experiment.
func (b *Backend) Reset() {
	b.stats = Stats{}
	b.link.Reset()
	for _, s := range b.servers {
		s.Reset()
	}
}

// SetFaultInjector attaches a chaos schedule to the backend. The simulated
// backend has no error channel (reads always complete in virtual time), so
// only ActDelay decisions apply: a fired faults.OpBackendRead rule adds its
// Delay to the request's service time, modelling a brown-out or a slow
// storage server. Pass nil to detach.
func (b *Backend) SetFaultInjector(inj *faults.Injector) { b.inj = inj }

// faultDelay reports the injected extra service time for one read at
// virtual time at (zero without an injector or a fired delay rule).
func (b *Backend) faultDelay(at simclock.Time) time.Duration {
	if b.inj == nil {
		return 0
	}
	if d := b.inj.DecideAt(faults.OpBackendRead, at); d.Action == faults.ActDelay {
		return d.Delay
	}
	return 0
}

// homeServer returns the server holding the first stripe of a sample. Files
// are laid out round-robin by ID, which spreads a random workload evenly.
func (b *Backend) homeServer(id dataset.SampleID) int {
	return int(uint64(id) % uint64(b.cfg.Servers))
}

// ReadSample simulates a random read of one sample arriving at virtual time
// at, and returns the completion time. A sample larger than one stripe pays
// the extra transfer but only one request overhead: OrangeFS issues the
// stripe reads in parallel and the first-stripe server dominates queueing.
func (b *Backend) ReadSample(at simclock.Time, id dataset.SampleID) simclock.Time {
	size := b.spec.SampleBytes(id)
	b.stats.SampleReads++
	b.stats.BytesRead += int64(size)

	perServer := size
	if size > b.cfg.StripeBytes {
		// Striped across servers: each moves ~1/Servers of the bytes.
		perServer = (size + b.cfg.Servers - 1) / b.cfg.Servers
	}
	service := b.cfg.PerReadOverhead + bps(perServer, b.cfg.ServerBandwidth) + b.faultDelay(at)
	_, srvEnd := b.servers[b.homeServer(id)].Acquire(at, service)
	_, end := b.link.Acquire(srvEnd, bps(size, b.cfg.LinkBandwidth))
	return end
}

// ReadPackage simulates one large sequential read of totalBytes (a package
// of L-samples, ≥1 MB in the paper). The package is striped over all
// servers, which stream their shares in parallel; a single request overhead
// is paid. Returns the completion time.
func (b *Backend) ReadPackage(at simclock.Time, totalBytes int) simclock.Time {
	if totalBytes <= 0 {
		return at
	}
	b.stats.PackageReads++
	b.stats.BytesRead += int64(totalBytes)

	perServer := (totalBytes + b.cfg.Servers - 1) / b.cfg.Servers
	service := b.cfg.PerReadOverhead + bps(perServer, b.cfg.ServerBandwidth) + b.faultDelay(at)
	var latest simclock.Time
	for _, s := range b.servers {
		if _, end := s.Acquire(at, service); end > latest {
			latest = end
		}
	}
	_, end := b.link.Acquire(latest, bps(totalBytes, b.cfg.LinkBandwidth))
	return end
}

// bps converts a byte count and a bytes/sec bandwidth into a duration.
func bps(bytes int, bandwidth float64) time.Duration {
	return time.Duration(float64(bytes) / bandwidth * float64(time.Second))
}

// DataSource is the real-bytes side of the backend, used by the TCP cache
// server and the examples. It serves deterministic payloads generated from
// the dataset spec and supports failure injection for resilience tests
// through the shared internal/faults substrate.
type DataSource struct {
	spec dataset.Spec

	mu    sync.Mutex
	reads int64
	inj   *faults.Injector
}

// NewDataSource builds a byte-serving source for the dataset.
func NewDataSource(spec dataset.Spec) (*DataSource, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &DataSource{spec: spec}, nil
}

// Spec returns the dataset this source serves.
func (d *DataSource) Spec() dataset.Spec { return d.spec }

// Injector returns the source's fault injector, creating an empty one on
// first use. Fetch is frequently called from background loader goroutines,
// so arming faults through the injector (which is internally synchronized)
// is race-free — unlike the pre-faults ad-hoc counter this replaces.
func (d *DataSource) Injector() *faults.Injector {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inj == nil {
		d.inj = faults.New(0)
	}
	return d.inj
}

// SetInjector attaches a caller-owned fault schedule (e.g. one shared with
// a wrapped listener in a chaos test). Pass nil to detach.
func (d *DataSource) SetInjector(inj *faults.Injector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inj = inj
}

// Fetch returns the payload of the sample, or an injected/real error.
func (d *DataSource) Fetch(id dataset.SampleID) ([]byte, error) {
	if !d.spec.Contains(id) {
		return nil, fmt.Errorf("storage: sample %d out of range for dataset %q", id, d.spec.Name)
	}
	d.mu.Lock()
	d.reads++
	inj := d.inj
	d.mu.Unlock()
	switch dec := inj.Decide(faults.OpSourceFetch); dec.Action {
	case faults.ActError, faults.ActDrop:
		return nil, dec.Err
	case faults.ActDelay:
		if dec.Delay > 0 {
			time.Sleep(dec.Delay)
		}
	}
	return d.spec.Payload(id), nil
}

// Reads reports how many valid Fetch calls have been served, counting
// injected failures but not out-of-range requests.
func (d *DataSource) Reads() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads
}

// FailNext arranges for the next n Fetch calls to return err — a
// compatibility shim over the faults injector for the original one-off
// failure hook. New tests should program the injector directly.
func (d *DataSource) FailNext(n int, err error) {
	d.Injector().Add(faults.FailN(faults.OpSourceFetch, n, err))
}

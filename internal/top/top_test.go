package top

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"icache/internal/obs"
)

const promText = `# HELP icache_cache_hits_total requests served from cached copies
# TYPE icache_cache_hits_total counter
icache_cache_hits_total 90
icache_cache_hit_ratio 0.9
icache_overload_gate_state 1
icache_overload_breakers_open 2
icache_prefetch_timeliness_ratio 0.75
icache_evict_capacity_total 40
icache_evict_scrub_total 3
icache_membership_registers_total 1
icache_membership_suspects_total 2
icache_plan_planned 200
icache_plan_completed 150
icache_epoch 5
icache_stage_request_seconds_bucket{le="+Inf"} 100
not-a-metric
`

func TestParseProm(t *testing.T) {
	m, err := ParseProm(strings.NewReader(promText))
	if err != nil {
		t.Fatal(err)
	}
	if m["icache_cache_hits_total"] != 90 {
		t.Errorf("hits = %g, want 90", m["icache_cache_hits_total"])
	}
	if m["icache_overload_gate_state"] != 1 {
		t.Errorf("gate = %g, want 1", m["icache_overload_gate_state"])
	}
	if _, ok := m[`icache_stage_request_seconds_bucket{le="+Inf"}`]; ok {
		t.Error("labeled series must be skipped")
	}
	if len(m) != 12 {
		t.Errorf("parsed %d series (%v), want 12", len(m), SortKeys(m))
	}
}

// fakeNode serves a static prom exposition and a two-point timeline.
func fakeNode(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(promText))
	})
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{
  "total": 3,
  "points": [
    {"at_ns": 1000000000, "values": {"requests": 100, "shed": 0}},
    {"at_ns": 2000000000, "values": {"requests": 150, "shed": 10}},
    {"at_ns": 3000000000, "values": {"requests": 250, "shed": 10}}
  ]
}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRate(t *testing.T) {
	tl := []obs.Point{
		{At: 1e9, Values: map[string]float64{"requests": 100}},
		{At: 3e9, Values: map[string]float64{"requests": 300}},
	}
	if got := rate(tl, "requests", 30); got != 100 {
		t.Errorf("rate = %g, want 100/s", got)
	}
	if got := rate(tl, "absent", 30); got != 0 {
		t.Errorf("absent series rate = %g, want 0", got)
	}
	if got := rate(tl[:1], "requests", 30); got != 0 {
		t.Errorf("single-point rate = %g, want 0", got)
	}
	// Counter reset (restart) clamps to zero instead of going negative.
	reset := []obs.Point{
		{At: 1e9, Values: map[string]float64{"requests": 500}},
		{At: 2e9, Values: map[string]float64{"requests": 10}},
	}
	if got := rate(reset, "requests", 30); got != 0 {
		t.Errorf("reset rate = %g, want 0", got)
	}
}

// TestRenderTwoNodes scrapes a two-node fake cluster plus one dead address
// and checks the rendered table carries each node's overload, breaker and
// membership state — the icache-top -once acceptance path.
func TestRenderTwoNodes(t *testing.T) {
	a, b := fakeNode(t), fakeNode(t)
	views := Collect(http.DefaultClient, []string{a.URL, b.URL, "127.0.0.1:1"})
	var sb strings.Builder
	Render(&sb, views)
	out := sb.String()

	for _, want := range []string{
		a.URL, b.URL, // both nodes rendered
		"brownout",     // overload gate state (gauge 1)
		"capacity(40)", // dominant eviction reason
		"live s2",      // membership: registered, 2 suspect flips
		"0.75",         // prefetch timeliness
		"150/200(-50)", // clairvoyant plan drain progress
		"DOWN",         // unreachable node flagged, not dropped
		"req/s",        // sparkline row from the timeline
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered view lacks %q:\n%s", want, out)
		}
	}
	// Rates come from the node's own timeline: (250-100)/(3s-1s) = 75/s
	// requests, (10-0)/2s = 5/s shed.
	if !strings.Contains(out, "75.0") || !strings.Contains(out, "5.0") {
		t.Errorf("timeline-derived rates missing:\n%s", out)
	}
	// BRK column shows two open breakers.
	if views[0].Metrics["icache_overload_breakers_open"] != 2 {
		t.Error("breaker gauge lost in scrape")
	}
}

func TestPlanProgress(t *testing.T) {
	if got := planProgress(map[string]float64{}); got != "-" {
		t.Errorf("no plan = %q, want -", got)
	}
	if got := planProgress(map[string]float64{"icache_plan_planned": 8, "icache_plan_completed": 3}); got != "3/8(-5)" {
		t.Errorf("mid-drain = %q, want 3/8(-5)", got)
	}
	if got := planProgress(map[string]float64{"icache_plan_planned": 8, "icache_plan_completed": 8}); got != "8/8" {
		t.Errorf("drained = %q, want 8/8", got)
	}
}

func TestSpark(t *testing.T) {
	tl := []obs.Point{
		{At: 1e9, Values: map[string]float64{"requests": 0}},
		{At: 2e9, Values: map[string]float64{"requests": 10}},
		{At: 3e9, Values: map[string]float64{"requests": 10}},
		{At: 4e9, Values: map[string]float64{"requests": 30}},
	}
	s := spark(tl, "requests", 10)
	if runes := []rune(s); len(runes) != 3 {
		t.Fatalf("spark %q has %d cells, want 3", s, len(runes))
	}
	if !strings.ContainsRune(s, sparkRunes[len(sparkRunes)-1]) {
		t.Errorf("spark %q lacks a full cell for the max delta", s)
	}
	if !strings.ContainsRune(s, sparkRunes[0]) {
		t.Errorf("spark %q lacks an empty cell for the zero delta", s)
	}
}

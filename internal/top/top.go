// Package top implements the scraping and rendering core of cmd/icache-top:
// a cluster-at-a-glance terminal view built from each node's Prometheus
// exposition (/metrics?format=prom) and in-process timeline
// (/debug/timeline). The package is deliberately dependency-free — the
// Prometheus parser handles exactly the subset the servers emit (unlabeled
// counters and gauges) — so the CLI stays stdlib-only.
//
// Rates are derived from the node's own timeline ring rather than from two
// client-side scrapes: the timeline already holds one snapshot per second,
// so even a single poll (-once) can report req/s, shed/s and hit-rate
// deltas over the trailing window.
package top

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"icache/internal/obs"
)

// ParseProm reads a Prometheus text exposition and returns the flat
// name→value map of every unlabeled sample. Comment lines (#) and labeled
// series (anything with a '{') are skipped — the icache servers emit only
// flat families, and histogram buckets from obs.Registry carry labels, so
// skipping them keeps the map unambiguous.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.ContainsRune(line, '{') {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:sp])] = v
	}
	return out, sc.Err()
}

// timelineDoc mirrors the JSON served by obs.Timeline.Handler.
type timelineDoc struct {
	Total  uint64      `json:"total"`
	Points []obs.Point `json:"points"`
}

// View is one node's scraped state: the flat metric map plus the decoded
// timeline. Err is set (and the rest zero) when the node was unreachable.
type View struct {
	Name     string
	Err      error
	Metrics  map[string]float64
	Timeline []obs.Point
}

// baseURL normalizes a node address: "host:port" becomes "http://host:port",
// full URLs pass through.
func baseURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// fetch GETs url and hands the body to decode.
func fetch(c *http.Client, url string, decode func(io.Reader) error) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return decode(resp.Body)
}

// Scrape polls one node's /metrics?format=prom and /debug/timeline. A
// missing timeline endpoint (older node, or a dkv replica without
// -debug-addr) is not an error — rates just read 0.
func Scrape(c *http.Client, addr string) View {
	v := View{Name: addr}
	base := baseURL(addr)
	err := fetch(c, base+"/metrics?format=prom", func(r io.Reader) error {
		m, err := ParseProm(r)
		v.Metrics = m
		return err
	})
	if err != nil {
		v.Err = err
		return v
	}
	_ = fetch(c, base+"/debug/timeline", func(r io.Reader) error {
		var doc timelineDoc
		if err := json.NewDecoder(r).Decode(&doc); err != nil {
			return err
		}
		v.Timeline = doc.Points
		return nil
	})
	return v
}

// Collect scrapes every node serially (the node count is small and the
// endpoints are local-network fast).
func Collect(c *http.Client, nodes []string) []View {
	out := make([]View, len(nodes))
	for i, n := range nodes {
		out[i] = Scrape(c, n)
	}
	return out
}

// rate computes key's per-second growth over the trailing window of the
// timeline (up to maxPoints points). It returns 0 when the window is too
// short or time stood still; negative deltas (counter reset after restart)
// clamp to 0.
func rate(tl []obs.Point, key string, maxPoints int) float64 {
	if len(tl) < 2 {
		return 0
	}
	start := 0
	if len(tl) > maxPoints {
		start = len(tl) - maxPoints
	}
	first, last := tl[start], tl[len(tl)-1]
	dt := float64(last.At-first.At) / 1e9
	if dt <= 0 {
		return 0
	}
	d := last.Values[key] - first.Values[key]
	if d < 0 {
		return 0
	}
	return d / dt
}

// gateName renders the 0/1/2 admission-ladder gauge.
func gateName(v float64) string {
	switch int(v) {
	case 1:
		return "brownout"
	case 2:
		return "shed"
	default:
		return "normal"
	}
}

// topEviction names the largest reason-coded eviction counter, e.g.
// "capacity(142)". All-zero renders as "-".
func topEviction(m map[string]float64) string {
	reasons := []struct{ name, key string }{
		{"capacity", "icache_evict_capacity_total"},
		{"dead-owner", "icache_evict_dead_owner_total"},
		{"scrub", "icache_evict_scrub_total"},
		{"ckpt-denied", "icache_evict_checkpoint_denied_total"},
	}
	best, bestV := "-", 0.0
	for _, r := range reasons {
		if v := m[r.key]; v > bestV {
			best, bestV = r.name, v
		}
	}
	if bestV == 0 {
		return "-"
	}
	return fmt.Sprintf("%s(%.0f)", best, bestV)
}

// membership summarizes a node's lease-membership activity from its own
// counters: "static" when it never registered (legacy static membership),
// otherwise "live" plus any observed suspect/death transitions.
func membership(m map[string]float64) string {
	if m["icache_membership_registers_total"] == 0 {
		return "static"
	}
	s := "live"
	if v := m["icache_membership_suspects_total"]; v > 0 {
		s += fmt.Sprintf(" s%.0f", v)
	}
	if v := m["icache_membership_deaths_total"]; v > 0 {
		s += fmt.Sprintf(" d%.0f", v)
	}
	return s
}

// sparkRunes back spark(); index scales with the normalized value.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders key's per-tick deltas over the trailing window as a
// mini-chart, normalized to the window's own maximum.
func spark(tl []obs.Point, key string, width int) string {
	if len(tl) < 2 || width <= 0 {
		return ""
	}
	start := 0
	if len(tl) > width+1 {
		start = len(tl) - width - 1
	}
	deltas := make([]float64, 0, width)
	max := 0.0
	for i := start + 1; i < len(tl); i++ {
		d := tl[i].Values[key] - tl[i-1].Values[key]
		if d < 0 {
			d = 0
		}
		deltas = append(deltas, d)
		if d > max {
			max = d
		}
	}
	var b strings.Builder
	for _, d := range deltas {
		idx := 0
		if max > 0 {
			idx = int(d / max * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// planProgress renders the clairvoyant plan's drain progress as
// "completed/planned" with the remainder in parentheses, or "-" when the
// node has no plan installed (planner off, or nothing missing this epoch).
func planProgress(m map[string]float64) string {
	planned := m["icache_plan_planned"]
	if planned == 0 {
		return "-"
	}
	completed := m["icache_plan_completed"]
	if rem := planned - completed; rem > 0 {
		return fmt.Sprintf("%.0f/%.0f(-%.0f)", completed, planned, rem)
	}
	return fmt.Sprintf("%.0f/%.0f", completed, planned)
}

// Render writes the cluster table: one row per node with request/hit/shed
// rates (from the node's timeline), goodput, overload-gate and breaker
// state, prefetch timeliness, clairvoyant plan progress, the dominant
// eviction reason, membership summary and epoch, followed by a req/s
// sparkline per node.
func Render(w io.Writer, views []View) {
	tw := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
	tw("%-22s %8s %6s %8s %9s %-9s %4s %7s %-13s %-16s %-10s %5s",
		"NODE", "REQ/S", "HIT%", "SHED/S", "GOODPUT", "GATE", "BRK", "PF-TIME", "PLAN", "TOP-EVICT", "MEMBER", "EPOCH")
	for _, v := range views {
		if v.Err != nil {
			tw("%-22s DOWN: %v", v.Name, v.Err)
			continue
		}
		m := v.Metrics
		reqRate := rate(v.Timeline, "requests", 30)
		shedRate := rate(v.Timeline, "shed", 30)
		hitPct := m["icache_cache_hit_ratio"] * 100
		tw("%-22s %8.1f %6.1f %8.1f %9.1f %-9s %4.0f %7.2f %-13s %-16s %-10s %5.0f",
			v.Name,
			reqRate,
			hitPct,
			shedRate,
			reqRate-shedRate,
			gateName(m["icache_overload_gate_state"]),
			m["icache_overload_breakers_open"],
			m["icache_prefetch_timeliness_ratio"],
			planProgress(m),
			topEviction(m),
			membership(m),
			m["icache_epoch"],
		)
	}
	for _, v := range views {
		if v.Err != nil || len(v.Timeline) < 2 {
			continue
		}
		tw("%-22s req/s %s", v.Name, spark(v.Timeline, "requests", 30))
	}
}

// SortKeys returns m's keys sorted — a test helper for stable diffing of
// parsed expositions.
func SortKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package simclock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("Advance returned %v, want 5ms", got)
	}
	c.Advance(3 * time.Millisecond)
	if got := c.Now(); got != 8*time.Millisecond {
		t.Fatalf("Now() = %v, want 8ms", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceToIsMonotonic(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(10 * time.Second)
	c.AdvanceTo(4 * time.Second) // past: must be a no-op
	if got := c.Now(); got != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s", got)
	}
}

func TestResourceIdleStartsImmediately(t *testing.T) {
	var r Resource
	start, end := r.Acquire(7*time.Millisecond, 2*time.Millisecond)
	if start != 7*time.Millisecond || end != 9*time.Millisecond {
		t.Fatalf("Acquire = (%v, %v), want (7ms, 9ms)", start, end)
	}
}

func TestResourceQueuesFIFO(t *testing.T) {
	var r Resource
	r.Acquire(0, 10*time.Millisecond)
	start, end := r.Acquire(2*time.Millisecond, 5*time.Millisecond)
	if start != 10*time.Millisecond {
		t.Fatalf("second request start = %v, want 10ms (queued)", start)
	}
	if end != 15*time.Millisecond {
		t.Fatalf("second request end = %v, want 15ms", end)
	}
	if got := r.BusyTotal(); got != 15*time.Millisecond {
		t.Fatalf("BusyTotal = %v, want 15ms", got)
	}
}

func TestResourceGapLeavesIdleTime(t *testing.T) {
	var r Resource
	r.Acquire(0, time.Millisecond)
	start, _ := r.Acquire(10*time.Millisecond, time.Millisecond)
	if start != 10*time.Millisecond {
		t.Fatalf("start = %v, want 10ms (resource was idle)", start)
	}
}

func TestResourceNegativeServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire with negative service did not panic")
		}
	}()
	var r Resource
	r.Acquire(0, -time.Millisecond)
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(0, time.Second)
	r.Reset()
	if r.BusyUntil() != 0 || r.BusyTotal() != 0 {
		t.Fatalf("after Reset: busyUntil=%v busyTotal=%v, want 0,0", r.BusyUntil(), r.BusyTotal())
	}
}

// Completion times of a FIFO resource must be non-decreasing when arrivals
// are non-decreasing, and every request must take at least its service time.
func TestResourceInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var r Resource
		var arrival Time
		var prevEnd Time
		for i := 0; i < 200; i++ {
			arrival += time.Duration(rng.Intn(1000)) * time.Microsecond
			service := time.Duration(rng.Intn(5000)) * time.Microsecond
			start, end := r.Acquire(arrival, service)
			if start < arrival {
				return false
			}
			if end-start != service {
				return false
			}
			if end < prevEnd {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDispatchesLeastLoaded(t *testing.T) {
	p := NewPool(2)
	p.Acquire(0, 10*time.Millisecond) // unit 0 busy until 10ms
	start, _ := p.Acquire(0, time.Millisecond)
	if start != 0 {
		t.Fatalf("second request should land on idle unit, start = %v", start)
	}
	// Both busy now; third request queues on the unit that frees first.
	start, _ = p.Acquire(0, time.Millisecond)
	if start != time.Millisecond {
		t.Fatalf("third request start = %v, want 1ms", start)
	}
}

func TestPoolSizeAndReset(t *testing.T) {
	p := NewPool(3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3", p.Size())
	}
	p.Acquire(0, time.Second)
	if p.BusyTotal() != time.Second {
		t.Fatalf("BusyTotal = %v, want 1s", p.BusyTotal())
	}
	p.Reset()
	if p.BusyTotal() != 0 {
		t.Fatalf("BusyTotal after reset = %v, want 0", p.BusyTotal())
	}
}

func TestNewPoolZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}

func TestEventQueueOrdersEvents(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	var order []int
	q.ScheduleAt(3*time.Millisecond, func(Time) { order = append(order, 3) })
	q.ScheduleAt(1*time.Millisecond, func(Time) { order = append(order, 1) })
	q.ScheduleAt(2*time.Millisecond, func(Time) { order = append(order, 2) })
	q.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("event order = %v, want [1 2 3]", order)
	}
	if c.Now() != 3*time.Millisecond {
		t.Fatalf("clock after RunAll = %v, want 3ms", c.Now())
	}
}

func TestEventQueueSameInstantFIFO(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		q.ScheduleAt(time.Millisecond, func(Time) { order = append(order, i) })
	}
	q.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order = %v, want ascending", order)
		}
	}
}

func TestEventQueueRunUntilHorizon(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	ran := 0
	q.ScheduleAt(time.Millisecond, func(Time) { ran++ })
	q.ScheduleAt(time.Hour, func(Time) { ran++ })
	q.RunUntil(time.Second)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1 (second is beyond horizon)", ran)
	}
	if c.Now() != time.Second {
		t.Fatalf("clock = %v, want horizon 1s", c.Now())
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
}

func TestEventQueueCascadingEvents(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	depth := 0
	var recur func(now Time)
	recur = func(now Time) {
		depth++
		if depth < 4 {
			q.ScheduleAfter(time.Millisecond, recur)
		}
	}
	q.ScheduleAt(0, recur)
	q.RunUntil(10 * time.Millisecond)
	if depth != 4 {
		t.Fatalf("cascade depth = %d, want 4", depth)
	}
}

func TestEventQueuePastSchedulingClamps(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	q := NewEventQueue(c)
	fired := false
	q.ScheduleAt(0, func(now Time) {
		fired = true
		if now != time.Second {
			t.Errorf("past event ran at %v, want clamped to 1s", now)
		}
	})
	q.RunAll()
	if !fired {
		t.Fatal("past-scheduled event never ran")
	}
}

// Package simclock provides the virtual-time primitives used by every
// simulated component in this repository.
//
// All experiments in the iCache reproduction run in simulated time so that a
// full paper evaluation (hundreds of simulated training epochs across many
// configurations) executes in seconds of wall-clock time and is perfectly
// deterministic. The package deliberately stays tiny: a monotonic virtual
// clock, a FIFO resource (the building block for storage servers, network
// links and GPUs), and a small event queue for components that need to
// schedule background work such as the L-cache loading thread.
package simclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation. It intentionally reuses time.Duration so arithmetic with
// service times reads naturally.
type Time = time.Duration

// Clock is a monotonic virtual clock. The zero value is ready to use and
// reads zero. Clock is safe for concurrent use; simulations that are fully
// sequential pay only an uncontended mutex.
type Clock struct {
	mu  sync.Mutex
	now Time
}

// NewClock returns a clock positioned at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Advance panics if d is negative: virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("simclock: Advance by negative duration %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t. Moving to a time in the past is a
// no-op, which lets multiple independent timelines race the clock forward
// without coordination.
func (c *Clock) AdvanceTo(t Time) Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Resource models a single FIFO-served resource in virtual time: a storage
// server, a network link, or a GPU. A request that arrives while the
// resource is busy waits until the in-flight work drains.
//
// Resource is the fundamental contention primitive of the simulation: two
// training jobs hammering the same storage server interleave through the
// same Resource and therefore slow each other down, exactly as the paper's
// shared-backend experiments require.
type Resource struct {
	busyUntil Time
	busyTotal time.Duration
}

// Acquire schedules a request arriving at the given virtual time with the
// given service duration. It returns the time the request starts being
// served and the time it completes. Service must be non-negative.
func (r *Resource) Acquire(arrival Time, service time.Duration) (start, end Time) {
	if service < 0 {
		panic(fmt.Sprintf("simclock: Acquire with negative service %v", service))
	}
	start = arrival
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end = start + service
	r.busyUntil = end
	r.busyTotal += service
	return start, end
}

// BusyUntil reports the virtual time at which the resource drains, given the
// requests accepted so far.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// BusyTotal reports the cumulative service time the resource has performed.
// It is the numerator of a utilization computation.
func (r *Resource) BusyTotal() time.Duration { return r.busyTotal }

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() { r.busyUntil = 0; r.busyTotal = 0 }

// Pool is a bank of identical resources with least-loaded dispatch. It models
// a resource with limited internal parallelism, e.g. a storage server that
// can serve k requests concurrently.
type Pool struct {
	units []Resource
}

// NewPool creates a pool of n units. n must be positive.
func NewPool(n int) *Pool {
	if n <= 0 {
		panic(fmt.Sprintf("simclock: NewPool with n=%d", n))
	}
	return &Pool{units: make([]Resource, n)}
}

// Acquire dispatches the request to the unit that can start it soonest.
func (p *Pool) Acquire(arrival Time, service time.Duration) (start, end Time) {
	best := 0
	for i := 1; i < len(p.units); i++ {
		if p.units[i].busyUntil < p.units[best].busyUntil {
			best = i
		}
	}
	return p.units[best].Acquire(arrival, service)
}

// Size reports the number of units in the pool.
func (p *Pool) Size() int { return len(p.units) }

// BusyTotal reports the cumulative service time across all units.
func (p *Pool) BusyTotal() time.Duration {
	var t time.Duration
	for i := range p.units {
		t += p.units[i].busyTotal
	}
	return t
}

// Reset idles every unit in the pool.
func (p *Pool) Reset() {
	for i := range p.units {
		p.units[i].Reset()
	}
}

// Event is a unit of deferred work in an EventQueue.
type Event struct {
	At Time
	Fn func(now Time)

	seq int // tie-break so equal-time events run in scheduling order
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EventQueue is a minimal discrete-event executor. Components schedule
// callbacks at virtual times; RunUntil drains every event at or before a
// horizon, advancing the associated clock as it goes. Events scheduled for
// the same instant run in the order they were scheduled.
type EventQueue struct {
	clock *Clock
	h     eventHeap
	seq   int
}

// NewEventQueue builds an event queue bound to the given clock.
func NewEventQueue(clock *Clock) *EventQueue {
	return &EventQueue{clock: clock}
}

// ScheduleAt enqueues fn to run at virtual time t. Scheduling in the past is
// clamped to the current time.
func (q *EventQueue) ScheduleAt(t Time, fn func(now Time)) {
	if now := q.clock.Now(); t < now {
		t = now
	}
	q.seq++
	heap.Push(&q.h, &Event{At: t, Fn: fn, seq: q.seq})
}

// ScheduleAfter enqueues fn to run d after the current virtual time.
func (q *EventQueue) ScheduleAfter(d time.Duration, fn func(now Time)) {
	q.ScheduleAt(q.clock.Now()+d, fn)
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// RunUntil executes every pending event with At <= horizon in time order,
// then advances the clock to the horizon. Events may schedule further
// events; those are honored if they also fall within the horizon.
func (q *EventQueue) RunUntil(horizon Time) {
	for len(q.h) > 0 && q.h[0].At <= horizon {
		e := heap.Pop(&q.h).(*Event)
		q.clock.AdvanceTo(e.At)
		e.Fn(e.At)
	}
	q.clock.AdvanceTo(horizon)
}

// RunAll executes every pending event in time order and leaves the clock at
// the time of the last event.
func (q *EventQueue) RunAll() {
	for len(q.h) > 0 {
		e := heap.Pop(&q.h).(*Event)
		q.clock.AdvanceTo(e.At)
		e.Fn(e.At)
	}
}

package trace

import (
	"strings"
	"testing"
	"time"
)

func analysisFixture() []Event {
	return []Event{
		{At: 0, Kind: KindEpoch, Arg: 0},
		{At: 1 * time.Millisecond, Kind: KindHit, ID: 1},
		{At: 2 * time.Millisecond, Kind: KindMiss, ID: 2},
		{At: 3 * time.Millisecond, Kind: KindMiss, ID: 2},
		{At: 4 * time.Millisecond, Kind: KindMiss, ID: 3},
		{At: 5 * time.Millisecond, Kind: KindSubstitute, ID: 4, Arg: 9},
		{At: 6 * time.Millisecond, Kind: KindEpoch, Arg: 1},
	}
}

func TestAnalyze(t *testing.T) {
	a := Analyze(analysisFixture(), 10)
	if a.Events != 7 || a.Epochs != 2 {
		t.Fatalf("events=%d epochs=%d", a.Events, a.Epochs)
	}
	if a.Window != 6*time.Millisecond {
		t.Fatalf("window = %v", a.Window)
	}
	// hits=1, subs=1, misses=3 → ratio 2/5.
	if a.HitRatio != 0.4 {
		t.Fatalf("hit ratio = %g, want 0.4", a.HitRatio)
	}
	if len(a.TopMissed) != 2 || a.TopMissed[0].ID != 2 || a.TopMissed[0].Count != 2 {
		t.Fatalf("top missed = %v", a.TopMissed)
	}
	if len(a.TopSubstituted) != 1 || a.TopSubstituted[0].ID != 4 {
		t.Fatalf("top substituted = %v", a.TopSubstituted)
	}
}

func TestAnalyzeEmptyAndTopN(t *testing.T) {
	a := Analyze(nil, 5)
	if a.Events != 0 || a.HitRatio != 0 {
		t.Fatal("empty analysis not zero")
	}
	events := []Event{
		{Kind: KindMiss, ID: 1}, {Kind: KindMiss, ID: 2}, {Kind: KindMiss, ID: 3},
	}
	if got := Analyze(events, 2); len(got.TopMissed) != 2 {
		t.Fatalf("topN not applied: %v", got.TopMissed)
	}
}

func TestCSVRoundTripThroughAnalysis(t *testing.T) {
	r := NewRecorder(64)
	for _, e := range analysisFixture() {
		r.Record(e.At, e.Kind, e.ID, e.Arg)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	events, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 7 {
		t.Fatalf("decoded %d events", len(events))
	}
	a := Analyze(events, 10)
	if a.HitRatio != 0.4 || a.Epochs != 2 {
		t.Fatalf("analysis after round trip: %+v", a)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"at_ns,kind,id,arg\nnot-a-number,hit,1,0\n",
		"at_ns,kind,id,arg\n0,launch,1,0\n",
		"at_ns,kind,id,arg\n0,hit,xyz,0\n",
		"at_ns,kind,id,arg\n0,hit,1,zz\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAnalysisPrint(t *testing.T) {
	a := Analyze(analysisFixture(), 3)
	var sb strings.Builder
	a.Print(&sb)
	out := sb.String()
	for _, want := range []string{"events: 7", "hit ratio", "most-missed", "sample 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("print missing %q:\n%s", want, out)
		}
	}
}

package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"icache/internal/dataset"
)

// Analysis summarizes a request-event trace: the operator-facing view of
// what the cache did over a window. cmd/icache-trace builds it from a CSV
// dump; tests build it straight from a Recorder.
type Analysis struct {
	// Events is the total number of events analyzed.
	Events int
	// Window spans the first to last event time.
	Window time.Duration
	// ByKind counts events per kind.
	ByKind map[Kind]int
	// HitRatio counts substitutions as hits, matching the paper's metric.
	HitRatio float64
	// Epochs is the number of epoch boundaries seen.
	Epochs int
	// TopMissed lists the most-missed sample IDs, descending.
	TopMissed []IDCount
	// TopSubstituted lists the most-substituted-away requests, descending.
	TopSubstituted []IDCount
}

// IDCount pairs a sample with an event count.
type IDCount struct {
	ID    dataset.SampleID
	Count int
}

// Analyze summarizes a slice of events (as returned by Recorder.Snapshot).
// topN bounds the per-sample rankings.
func Analyze(events []Event, topN int) *Analysis {
	a := &Analysis{Events: len(events), ByKind: make(map[Kind]int)}
	if len(events) == 0 {
		return a
	}
	minAt, maxAt := events[0].At, events[0].At
	missed := make(map[dataset.SampleID]int)
	substituted := make(map[dataset.SampleID]int)
	for _, e := range events {
		a.ByKind[e.Kind]++
		if e.At < minAt {
			minAt = e.At
		}
		if e.At > maxAt {
			maxAt = e.At
		}
		switch e.Kind {
		case KindMiss:
			missed[e.ID]++
		case KindSubstitute:
			substituted[e.ID]++
		case KindEpoch:
			a.Epochs++
		}
	}
	a.Window = maxAt - minAt
	served := a.ByKind[KindHit] + a.ByKind[KindSubstitute]
	if total := served + a.ByKind[KindMiss]; total > 0 {
		a.HitRatio = float64(served) / float64(total)
	}
	a.TopMissed = topCounts(missed, topN)
	a.TopSubstituted = topCounts(substituted, topN)
	return a
}

func topCounts(m map[dataset.SampleID]int, n int) []IDCount {
	out := make([]IDCount, 0, len(m))
	for id, c := range m {
		out = append(out, IDCount{ID: id, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ReadCSV parses a trace dump produced by Recorder.WriteCSV. Both the
// pre-span 4-column format (at_ns,kind,id,arg) and the current 7-column
// format (…,trace,hop,dur_ns) are accepted, so old dumps stay readable.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // widths are validated per row below
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: parse csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	kindByName := make(map[string]Kind, len(kindNames))
	for i, name := range kindNames {
		kindByName[name] = Kind(i)
	}
	var events []Event
	for i, row := range rows[1:] {
		if len(row) != 4 && len(row) != 7 {
			return nil, fmt.Errorf("trace: row %d has %d columns, want 4 or 7", i+2, len(row))
		}
		at, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d at_ns: %w", i+2, err)
		}
		kind, ok := kindByName[row[1]]
		if !ok {
			return nil, fmt.Errorf("trace: row %d unknown kind %q", i+2, row[1])
		}
		id, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d id: %w", i+2, err)
		}
		arg, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d arg: %w", i+2, err)
		}
		e := Event{At: time.Duration(at), Kind: kind, ID: dataset.SampleID(id), Arg: arg}
		if len(row) == 7 {
			traceID, err := strconv.ParseUint(row[4], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d trace: %w", i+2, err)
			}
			hop, err := strconv.ParseUint(row[5], 10, 8)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d hop: %w", i+2, err)
			}
			dur, err := strconv.ParseInt(row[6], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d dur_ns: %w", i+2, err)
			}
			e.TraceID, e.Hop, e.Dur = traceID, uint8(hop), time.Duration(dur)
		}
		events = append(events, e)
	}
	return events, nil
}

// Print renders the analysis as an operator-readable summary.
func (a *Analysis) Print(w io.Writer) {
	fmt.Fprintf(w, "events: %d over %s (%d epochs)\n", a.Events, a.Window.Round(time.Millisecond), a.Epochs)
	kinds := make([]Kind, 0, len(a.ByKind))
	for k := range a.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-10s %d\n", k, a.ByKind[k])
	}
	fmt.Fprintf(w, "hit ratio (subs count as hits): %.1f%%\n", 100*a.HitRatio)
	if len(a.TopMissed) > 0 {
		fmt.Fprintln(w, "most-missed samples:")
		for _, ic := range a.TopMissed {
			fmt.Fprintf(w, "  sample %-8d %d misses\n", ic.ID, ic.Count)
		}
	}
	if len(a.TopSubstituted) > 0 {
		fmt.Fprintln(w, "most-substituted requests:")
		for _, ic := range a.TopSubstituted {
			fmt.Fprintf(w, "  sample %-8d %d substitutions\n", ic.ID, ic.Count)
		}
	}
}

package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, KindHit, 1, 0) // must not panic
	if r.Len() != 0 || r.Total() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestRecordAndSnapshotOrder(t *testing.T) {
	r := NewRecorder(10)
	for i := 0; i < 5; i++ {
		r.Record(time.Duration(i), KindHit, 0, int64(i))
	}
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("len = %d", len(snap))
	}
	for i, e := range snap {
		if e.Arg != int64(i) {
			t.Fatalf("order wrong: %v", snap)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.Record(time.Duration(i), KindMiss, 0, int64(i))
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d, want capacity 3", len(snap))
	}
	if snap[0].Arg != 4 || snap[2].Arg != 6 {
		t.Fatalf("ring kept wrong window: %v", snap)
	}
	if r.Total() != 7 {
		t.Fatalf("Total = %d, want 7", r.Total())
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestCounts(t *testing.T) {
	r := NewRecorder(16)
	r.Record(0, KindHit, 1, 0)
	r.Record(0, KindHit, 2, 0)
	r.Record(0, KindEvict, 3, 0)
	c := r.Counts()
	if c[KindHit] != 2 || c[KindEvict] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(4)
	r.Record(time.Millisecond, KindSubstitute, 7, 42)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "at_ns,kind,id,arg") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "1000000,substitute,7,42") {
		t.Fatalf("row missing:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindHit, KindMiss, KindSubstitute, KindAdmit, KindEvict, KindPackage, KindRefresh, KindEpoch}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad/duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind not diagnosable")
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(0, KindHit, 1, 1)
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
}

func TestNewRecorderZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecorder(0) did not panic")
		}
	}()
	NewRecorder(0)
}

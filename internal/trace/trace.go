// Package trace provides lightweight request-event recording for the cache
// server: a fixed-capacity ring buffer of typed events that an operator can
// dump as CSV to understand what the cache did and why — which requests
// hit, missed, were substituted, which samples the loader shipped, when the
// heap was refreshed. Recording is allocation-free per event and safe for
// concurrent use; a nil *Recorder is a valid no-op sink, so call sites need
// no conditionals.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"icache/internal/dataset"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	// KindHit is a request served from the cache (exact).
	KindHit Kind = iota
	// KindMiss is a request that went to backend storage.
	KindMiss
	// KindSubstitute is a request served by a different cached sample.
	KindSubstitute
	// KindAdmit is a sample entering a cache region.
	KindAdmit
	// KindEvict is a sample leaving a cache region.
	KindEvict
	// KindPackage is a loader package arrival.
	KindPackage
	// KindRefresh is an H-list installation / heap refresh.
	KindRefresh
	// KindEpoch is an epoch boundary.
	KindEpoch

	// Span-style kinds (PR 4): events carrying a cross-node trace context
	// (trace ID + hop) and a measured duration, recorded by the network
	// layers rather than the cache policy. Together they reconstruct one
	// request's hop chain across client → cache node → peer/directory →
	// backend (see spans.go and cmd/icache-trace).

	// KindRPCSend is an outbound RPC measured at the sender: a client's
	// GetBatch round trip (hop 0) or a cache node's peer/directory call
	// (hop = the sender's hop). Dur is the full round-trip time.
	KindRPCSend
	// KindRPCRecv is an inbound RPC measured at the receiver: the time the
	// receiving node spent serving the request. Hop is the receiver's
	// position in the chain.
	KindRPCRecv
	// KindBackend is a backend-storage fetch performed while serving a
	// traced request; Dur is the storage service time.
	KindBackend
)

// kindNames backs Kind.String and CSV parsing; order must match the
// constants above.
var kindNames = [...]string{
	"hit", "miss", "substitute", "admit", "evict", "package", "refresh",
	"epoch", "rpc_send", "rpc_recv", "backend",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsSpan reports whether k is a span-style kind (carries trace context and
// a duration).
func (k Kind) IsSpan() bool {
	return k == KindRPCSend || k == KindRPCRecv || k == KindBackend
}

// Event is one recorded cache event. Arg's meaning depends on Kind: the
// substitute's ID for KindSubstitute, the sample count for KindPackage, the
// H-list length for KindRefresh, the epoch number for KindEpoch, the batch
// size for KindRPCRecv.
//
// Span-style kinds additionally carry the cross-node trace context
// (TraceID + Hop) and the measured Dur; those fields are zero on classic
// cache events.
type Event struct {
	At   time.Duration // virtual or wall offset, as the recorder's owner defines
	Kind Kind
	ID   dataset.SampleID
	Arg  int64

	// TraceID and Hop identify the request chain a span event belongs to
	// (0 = untraced). Dur is the span's measured duration.
	TraceID uint64
	Hop     uint8
	Dur     time.Duration
}

// Recorder is a concurrency-safe ring buffer of events. The zero value is
// unusable; make one with NewRecorder. A nil Recorder ignores Record calls
// and dumps nothing, so owners can leave tracing off without branching.
type Recorder struct {
	mu     sync.Mutex
	buf    []Event
	next   int
	filled bool
	total  uint64
}

// NewRecorder allocates a ring holding the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: capacity %d", capacity))
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends an event, overwriting the oldest once full. Safe on nil.
func (r *Recorder) Record(at time.Duration, kind Kind, id dataset.SampleID, arg int64) {
	r.record(Event{At: at, Kind: kind, ID: id, Arg: arg})
}

// RecordSpan appends a span-style event carrying a trace context and a
// measured duration. Safe on nil.
func (r *Recorder) RecordSpan(at time.Duration, kind Kind, id dataset.SampleID, arg int64, traceID uint64, hop uint8, dur time.Duration) {
	r.record(Event{At: at, Kind: kind, ID: id, Arg: arg, TraceID: traceID, Hop: hop, Dur: dur})
}

func (r *Recorder) record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	r.total++
	r.mu.Unlock()
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.buf)
	}
	return r.next
}

// Total reports how many events were ever recorded (including overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained events oldest-first.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Counts aggregates retained events by kind.
func (r *Recorder) Counts() map[Kind]int {
	counts := make(map[Kind]int)
	for _, e := range r.Snapshot() {
		counts[e.Kind]++
	}
	return counts
}

// WriteCSV dumps the retained events oldest-first as CSV with the columns
// at_ns, kind, id, arg, trace, hop, dur_ns. The first four columns are the
// pre-span format; ReadCSV accepts both widths, so old dumps stay
// readable. The trace column is the trace ID in hex (0 = untraced).
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ns", "kind", "id", "arg", "trace", "hop", "dur_ns"}); err != nil {
		return err
	}
	for _, e := range r.Snapshot() {
		rec := []string{
			strconv.FormatInt(int64(e.At), 10),
			e.Kind.String(),
			strconv.FormatInt(int64(e.ID), 10),
			strconv.FormatInt(e.Arg, 10),
			strconv.FormatUint(e.TraceID, 16),
			strconv.FormatUint(uint64(e.Hop), 10),
			strconv.FormatInt(int64(e.Dur), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVLimited is WriteCSV under a byte budget: when the full dump
// would exceed maxBytes, the OLDEST rows are cut so the newest suffix
// (plus the header) fits — the end of a soak run is what a post-mortem
// reads first. maxBytes <= 0 means unlimited. It returns how many retained
// events were cut; ring-overwrite drops are reported by Total()-Len() as
// usual.
func (r *Recorder) WriteCSVLimited(w io.Writer, maxBytes int64) (cut int, err error) {
	if maxBytes <= 0 {
		return 0, r.WriteCSV(w)
	}
	events := r.Snapshot()
	rows := make([][]string, len(events))
	header := []string{"at_ns", "kind", "id", "arg", "trace", "hop", "dur_ns"}
	// Budget accounting mirrors encoding/csv's default output: fields
	// joined by commas plus a trailing newline. None of our fields need
	// quoting, so the estimate is exact.
	size := func(rec []string) int64 {
		n := int64(len(rec)) // separators + newline
		for _, f := range rec {
			n += int64(len(f))
		}
		return n
	}
	budget := maxBytes - size(header)
	for i, e := range events {
		rows[i] = []string{
			strconv.FormatInt(int64(e.At), 10),
			e.Kind.String(),
			strconv.FormatInt(int64(e.ID), 10),
			strconv.FormatInt(e.Arg, 10),
			strconv.FormatUint(e.TraceID, 16),
			strconv.FormatUint(uint64(e.Hop), 10),
			strconv.FormatInt(int64(e.Dur), 10),
		}
	}
	// Walk from the newest row backwards, keeping what fits.
	start := len(rows)
	for i := len(rows) - 1; i >= 0; i-- {
		n := size(rows[i])
		if n > budget {
			break
		}
		budget -= n
		start = i
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return start, err
	}
	for _, rec := range rows[start:] {
		if err := cw.Write(rec); err != nil {
			return start, err
		}
	}
	cw.Flush()
	return start, cw.Error()
}

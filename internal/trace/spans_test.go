package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestSpanRoundTrip pins that RecordSpan → WriteCSV → ReadCSV preserves
// the trace context and duration exactly.
func TestSpanRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	r.RecordSpan(time.Millisecond, KindRPCSend, 3, 16, 0xdeadbeef, 2, 250*time.Microsecond)
	r.Record(2*time.Millisecond, KindHit, 4, 0)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	events, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events, want 2", len(events))
	}
	want := Event{At: time.Millisecond, Kind: KindRPCSend, ID: 3, Arg: 16,
		TraceID: 0xdeadbeef, Hop: 2, Dur: 250 * time.Microsecond}
	if events[0] != want {
		t.Fatalf("span event = %+v, want %+v", events[0], want)
	}
	if events[1].TraceID != 0 || events[1].Dur != 0 {
		t.Fatalf("classic event grew span fields: %+v", events[1])
	}
}

// TestReadCSVLegacyWidth pins that pre-span 4-column dumps stay readable.
func TestReadCSVLegacyWidth(t *testing.T) {
	events, err := ReadCSV(strings.NewReader("at_ns,kind,id,arg\n1000,hit,7,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != KindHit || events[0].ID != 7 {
		t.Fatalf("legacy decode = %+v", events)
	}
}

func TestReadCSVRejectsSpanGarbage(t *testing.T) {
	cases := []string{
		"at_ns,kind,id,arg,trace,hop,dur_ns\n0,hit,1,0,zz--,0,0\n",     // bad trace hex
		"at_ns,kind,id,arg,trace,hop,dur_ns\n0,hit,1,0,ab,999,0\n",     // hop > 255
		"at_ns,kind,id,arg,trace,hop,dur_ns\n0,hit,1,0,ab,0,oops\n",    // bad dur
		"at_ns,kind,id,arg,trace,hop,dur_ns\n0,hit,1,0,ab,0,0,extra\n", // 8 columns
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestChains reconstructs hop chains from a mixed event stream: grouping
// by trace ID, causal ordering within a chain, slowest-first ranking, and
// the hop-0 round trip as the chain's root duration.
func TestChains(t *testing.T) {
	events := []Event{
		{At: 1, Kind: KindHit, ID: 5}, // ignored: not a span
		{At: 2, Kind: KindRPCRecv, ID: 0, TraceID: 0, Hop: 1, Dur: time.Millisecond}, // ignored: untraced
		{At: 10, Kind: KindRPCRecv, TraceID: 0xA, Hop: 1, Dur: 450 * time.Microsecond},
		{At: 11, Kind: KindBackend, ID: 7, TraceID: 0xA, Hop: 2, Dur: 200 * time.Microsecond},
		{At: 12, Kind: KindRPCRecv, ID: 7, TraceID: 0xA, Hop: 2, Dur: 250 * time.Microsecond},
		{At: 13, Kind: KindRPCSend, ID: 7, TraceID: 0xA, Hop: 1, Dur: 300 * time.Microsecond},
		{At: 14, Kind: KindRPCSend, TraceID: 0xA, Hop: 0, Dur: 500 * time.Microsecond},
		{At: 20, Kind: KindRPCSend, TraceID: 0xB, Hop: 0, Dur: 100 * time.Microsecond},
	}
	chains := Chains(events)
	if len(chains) != 2 {
		t.Fatalf("%d chains, want 2", len(chains))
	}
	// Slowest first: chain A (root 500µs) before chain B (root 100µs).
	if chains[0].TraceID != 0xA || chains[1].TraceID != 0xB {
		t.Fatalf("chain order: %x, %x", chains[0].TraceID, chains[1].TraceID)
	}
	a := chains[0]
	if a.Root != 500*time.Microsecond || a.Hops() != 2 || len(a.Spans) != 5 {
		t.Fatalf("chain A: root=%v hops=%d spans=%d", a.Root, a.Hops(), len(a.Spans))
	}
	// Causal order: hop ascending; within a hop, send < recv < backend.
	wantOrder := []struct {
		hop  uint8
		kind Kind
	}{
		{0, KindRPCSend}, {1, KindRPCSend}, {1, KindRPCRecv}, {2, KindRPCRecv}, {2, KindBackend},
	}
	for i, w := range wantOrder {
		if a.Spans[i].Hop != w.hop || a.Spans[i].Kind != w.kind {
			t.Fatalf("span %d = hop %d %s, want hop %d %s",
				i, a.Spans[i].Hop, a.Spans[i].Kind, w.hop, w.kind)
		}
	}
}

// TestChainRootFallback: a chain with no hop-0 send (e.g. the client's
// ring rolled over) ranks by its longest span instead.
func TestChainRootFallback(t *testing.T) {
	chains := Chains([]Event{
		{Kind: KindRPCRecv, TraceID: 0xC, Hop: 1, Dur: 90 * time.Microsecond},
		{Kind: KindBackend, TraceID: 0xC, Hop: 1, Dur: 70 * time.Microsecond},
	})
	if len(chains) != 1 || chains[0].Root != 90*time.Microsecond {
		t.Fatalf("chains = %+v", chains)
	}
}

func TestHopBreakdown(t *testing.T) {
	chains := Chains([]Event{
		{Kind: KindRPCSend, TraceID: 1, Hop: 0, Dur: 100},
		{Kind: KindRPCSend, TraceID: 2, Hop: 0, Dur: 300},
		{Kind: KindRPCRecv, TraceID: 1, Hop: 1, Dur: 80},
	})
	stats := HopBreakdown(chains)
	if len(stats) != 2 {
		t.Fatalf("%d rows, want 2", len(stats))
	}
	if stats[0].Hop != 0 || stats[0].Kind != KindRPCSend || stats[0].Count != 2 ||
		stats[0].Mean() != 200 || stats[0].Max != 300 {
		t.Fatalf("row 0 = %+v", stats[0])
	}
	if stats[1].Hop != 1 || stats[1].Kind != KindRPCRecv || stats[1].Count != 1 {
		t.Fatalf("row 1 = %+v", stats[1])
	}
	if (HopStat{}).Mean() != 0 {
		t.Fatal("empty HopStat mean != 0")
	}
}

// TestPrintSpansEmpty: dumps without spans must print nothing, keeping
// the analyzer's output unchanged for untraced runs.
func TestPrintSpansEmpty(t *testing.T) {
	var buf bytes.Buffer
	PrintSpans(&buf, nil, 5)
	PrintSpans(&buf, Chains(analysisFixture()), 5)
	if buf.Len() != 0 {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

// TestSpansGolden runs the full analyzer pipeline — ReadCSV, Analyze,
// PrintSpans — over the canned testdata dump and compares the rendered
// report byte-for-byte against the golden file. Run with -update to
// regenerate.
func TestSpansGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "spans.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Analyze(events, 3).Print(&buf)
	PrintSpans(&buf, Chains(events), 2)

	goldenPath := filepath.Join("testdata", "spans.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report differs from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

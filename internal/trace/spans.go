package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// This file reconstructs cross-node request chains from span-style events
// (KindRPCSend / KindRPCRecv / KindBackend). Each traced request carries a
// trace ID and a hop counter through the wire protocol; every node that
// touches the request records spans tagged with both. Grouping by trace ID
// and ordering by hop rebuilds the request's path:
//
//	hop 0  rpc_send   client's GetBatch round trip
//	hop 1  rpc_recv   first cache node's serve time
//	hop 1  rpc_send   that node's directory lookup / peer fetch
//	hop 2  rpc_recv   peer owner's serve time
//	hop N  backend    whichever node fell through to storage
//
// cmd/icache-trace renders the per-hop latency breakdown and the slowest
// chains from this view.

// Chain is one traced request's reconstructed hop sequence.
type Chain struct {
	// TraceID identifies the request chain (never 0 for a valid chain).
	TraceID uint64
	// Spans holds the chain's span events ordered by hop, then by kind
	// (send before recv before backend within a hop), then by time.
	Spans []Event
	// Root is the outermost measured duration: the hop-0 rpc_send round
	// trip when present, otherwise the longest span in the chain. This is
	// what "slow" means when ranking chains.
	Root time.Duration
}

// Hops reports the highest hop number seen in the chain.
func (c *Chain) Hops() uint8 {
	var max uint8
	for _, s := range c.Spans {
		if s.Hop > max {
			max = s.Hop
		}
	}
	return max
}

// spanKindOrder places sends before recvs before backend fetches within a
// hop, mirroring the causal order in which a request passes through them.
func spanKindOrder(k Kind) int {
	switch k {
	case KindRPCSend:
		return 0
	case KindRPCRecv:
		return 1
	case KindBackend:
		return 2
	}
	return 3
}

// Chains groups the span events in events by trace ID and reconstructs
// each request's hop chain. Untraced (TraceID == 0) and non-span events
// are ignored. Chains are returned slowest-first (by Root), ties broken
// by trace ID for determinism.
func Chains(events []Event) []*Chain {
	byID := make(map[uint64]*Chain)
	var order []uint64
	for _, e := range events {
		if !e.Kind.IsSpan() || e.TraceID == 0 {
			continue
		}
		c, ok := byID[e.TraceID]
		if !ok {
			c = &Chain{TraceID: e.TraceID}
			byID[e.TraceID] = c
			order = append(order, e.TraceID)
		}
		c.Spans = append(c.Spans, e)
	}
	chains := make([]*Chain, 0, len(order))
	for _, id := range order {
		c := byID[id]
		sort.SliceStable(c.Spans, func(i, j int) bool {
			a, b := c.Spans[i], c.Spans[j]
			if a.Hop != b.Hop {
				return a.Hop < b.Hop
			}
			if ka, kb := spanKindOrder(a.Kind), spanKindOrder(b.Kind); ka != kb {
				return ka < kb
			}
			return a.At < b.At
		})
		for _, s := range c.Spans {
			if s.Hop == 0 && s.Kind == KindRPCSend {
				c.Root = s.Dur
				break
			}
		}
		if c.Root == 0 {
			for _, s := range c.Spans {
				if s.Dur > c.Root {
					c.Root = s.Dur
				}
			}
		}
		chains = append(chains, c)
	}
	sort.SliceStable(chains, func(i, j int) bool {
		if chains[i].Root != chains[j].Root {
			return chains[i].Root > chains[j].Root
		}
		return chains[i].TraceID < chains[j].TraceID
	})
	return chains
}

// HopStat aggregates all spans recorded at one (hop, kind) position across
// every chain: how many requests passed through it and how long they spent.
type HopStat struct {
	Hop   uint8
	Kind  Kind
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean is the average span duration at this position.
func (h HopStat) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Total / time.Duration(h.Count)
}

// HopBreakdown aggregates the chains' spans into a per-(hop, kind) latency
// table, ordered by hop then kind — the operator's view of where traced
// requests spend their time as they cross nodes.
func HopBreakdown(chains []*Chain) []HopStat {
	type key struct {
		hop  uint8
		kind Kind
	}
	agg := make(map[key]*HopStat)
	for _, c := range chains {
		for _, s := range c.Spans {
			k := key{s.Hop, s.Kind}
			st, ok := agg[k]
			if !ok {
				st = &HopStat{Hop: s.Hop, Kind: s.Kind}
				agg[k] = st
			}
			st.Count++
			st.Total += s.Dur
			if s.Dur > st.Max {
				st.Max = s.Dur
			}
		}
	}
	out := make([]HopStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hop != out[j].Hop {
			return out[i].Hop < out[j].Hop
		}
		return spanKindOrder(out[i].Kind) < spanKindOrder(out[j].Kind)
	})
	return out
}

// PrintSpans renders the hop breakdown table and, when slowN > 0, the
// slowN slowest chains with their full hop sequences. It prints nothing
// when the events carry no spans, so untraced dumps keep their old output.
func PrintSpans(w io.Writer, chains []*Chain, slowN int) {
	if len(chains) == 0 {
		return
	}
	spans := 0
	for _, c := range chains {
		spans += len(c.Spans)
	}
	fmt.Fprintf(w, "traced chains: %d (%d spans)\n", len(chains), spans)
	fmt.Fprintln(w, "per-hop latency breakdown:")
	fmt.Fprintf(w, "  %-4s %-10s %8s %12s %12s\n", "hop", "kind", "count", "mean", "max")
	for _, st := range HopBreakdown(chains) {
		fmt.Fprintf(w, "  %-4d %-10s %8d %12s %12s\n",
			st.Hop, st.Kind, st.Count, fmtDur(st.Mean()), fmtDur(st.Max))
	}
	if slowN <= 0 {
		return
	}
	n := slowN
	if n > len(chains) {
		n = len(chains)
	}
	fmt.Fprintf(w, "slowest %d chains:\n", n)
	for _, c := range chains[:n] {
		fmt.Fprintf(w, "  trace %016x  total %s  hops %d\n", c.TraceID, fmtDur(c.Root), c.Hops())
		for _, s := range c.Spans {
			fmt.Fprintf(w, "    hop %-3d %-10s sample %-8d %s\n", s.Hop, s.Kind, s.ID, fmtDur(s.Dur))
		}
	}
}

// fmtDur rounds a duration to microsecond resolution for table alignment;
// sub-microsecond spans keep full precision so they stay visible.
func fmtDur(d time.Duration) string {
	if d >= time.Millisecond {
		return d.Round(10 * time.Microsecond).String()
	}
	if d >= time.Microsecond {
		return d.Round(100 * time.Nanosecond).String()
	}
	return d.String()
}

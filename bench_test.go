// Package icache's root test file wires every paper artifact to a
// testing.B benchmark: `go test -bench Fig8` regenerates Figure 8 (quick
// scale), and `-bench .` sweeps the entire evaluation. Benchmarks print
// their report under -v so the rows the paper presents are visible in the
// bench log; the reported ns/op is the wall time of regenerating the
// artifact, not a claim about the simulated system.
package icache

import (
	"os"
	"testing"

	"icache/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, experiments.Options{Quick: true, Seed: int64(i)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			rep.Print(os.Stdout)
		}
	}
}

// BenchmarkFig1 regenerates Figure 1 (I/O fraction vs batch size).
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2 regenerates Figure 2 (CIS on tmpfs vs remote storage).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates Figure 3 (importance-value drift).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkTable1 regenerates Table I (CIFAR10 accuracy).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkTable2 regenerates Table II (ImageNet accuracy).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkTable3 regenerates Table III (substitution policy vs accuracy).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "tab3") }

// BenchmarkFig7 regenerates Figure 7 (accuracy convergence curves).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (per-epoch training time, 8 models ×
// 7 systems).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (per-epoch I/O time on CIFAR10).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (technique ablation, training time).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (technique ablation, I/O + hit
// ratio).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12 (multi-GPU scaling).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13 (distributed training over NFS).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Figure 14 (multi-job shared cache).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Figure 15 (prefetch-worker sensitivity).
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Figure 16 (cache-size sensitivity).
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkAblPackaging runs the dynamic-vs-static packaging ablation.
func BenchmarkAblPackaging(b *testing.B) { benchExperiment(b, "abl-packaging") }

// BenchmarkAblPartition runs the H/L partition-policy ablation.
func BenchmarkAblPartition(b *testing.B) { benchExperiment(b, "abl-partition") }

// BenchmarkExtCriteria runs the §VI importance-criteria extension study.
func BenchmarkExtCriteria(b *testing.B) { benchExperiment(b, "ext-criteria") }

// BenchmarkExtTier runs the §VI local-storage spill-tier extension study.
func BenchmarkExtTier(b *testing.B) { benchExperiment(b, "ext-tier") }

// BenchmarkExtTTA runs the time-to-accuracy study (speed and accuracy loss
// folded into one metric).
func BenchmarkExtTTA(b *testing.B) { benchExperiment(b, "ext-tta") }

// BenchmarkExtSeeds runs the seed-variance robustness study.
func BenchmarkExtSeeds(b *testing.B) { benchExperiment(b, "ext-seeds") }

// BenchmarkExtEcho runs the data-echoing comparison (§VII-B related work).
func BenchmarkExtEcho(b *testing.B) { benchExperiment(b, "ext-echo") }

// BenchmarkExtPolicies runs the classical-policy comparison.
func BenchmarkExtPolicies(b *testing.B) { benchExperiment(b, "ext-policies") }

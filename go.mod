module icache

go 1.22

// Clientserver: the end-to-end RPC path. Starts a real iCache TCP server on
// a loopback port (the role of `icache-server`), then drives it exactly
// like the paper's PyTorch client: push an H-list, fetch mini-batches, feed
// losses back, print server-side cache statistics. Every payload is
// integrity-checked against the dataset generator.
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/rpc"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func main() {
	// A small dataset keeps the demo snappy; the geometry is CIFAR-like.
	spec := dataset.Spec{Name: "demo", NumSamples: 10000, MeanSampleBytes: 3073, Seed: 7}

	backend, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		log.Fatal(err)
	}
	cacheSrv, err := icache.NewServer(backend, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 42)
	if err != nil {
		log.Fatal(err)
	}
	source, err := storage.NewDataSource(spec)
	if err != nil {
		log.Fatal(err)
	}
	srv := rpc.NewServer(cacheSrv, source)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("iCache server listening on %s\n", ln.Addr())

	client, err := rpc.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	tracker, err := sampling.NewTracker(spec.NumSamples, 2.3, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	loss, err := train.NewLossModel(spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))

	for epoch := 0; epoch < 3; epoch++ {
		loss.BeginEpoch(epoch)
		sched, hlist := sampling.IISSchedule(tracker, sampling.DefaultIIS(), rng)
		if err := client.UpdateImportance(hlist.Items); err != nil {
			log.Fatal(err)
		}
		if err := client.BeginEpoch(epoch); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		fetched := 0
		for _, batch := range sched.Batches(256) {
			samples, err := client.GetBatch(batch)
			if err != nil {
				log.Fatal(err)
			}
			for _, s := range samples {
				if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
					log.Fatalf("integrity check failed: %v", err)
				}
				tracker.Observe(s.ID, loss.Train(s.ID))
				fetched++
			}
		}
		st, err := client.Stats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: fetched %d samples in %s | hits=%d misses=%d substitutions=%d hcache=%d lcache=%d\n",
			epoch, fetched, time.Since(start).Round(time.Millisecond),
			st.Hits, st.Misses, st.Substitutions, st.HCacheLen, st.LCacheLen)
	}
	fmt.Println("all payloads verified — the cache served exactly the bytes the dataset defines")
}

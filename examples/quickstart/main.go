// Quickstart: simulate one I/O-bound training job on CIFAR10 twice — once
// with the paper's Default setup (LRU cache over remote storage) and once
// with iCache — and print the per-epoch comparison the paper's headline
// claim is about.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"icache/internal/cache"
	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func main() {
	spec := dataset.CIFAR10()
	capBytes := spec.TotalBytes() / 5 // 20% cache, as in the paper

	run := func(name string, mk func(*storage.Backend) (train.DataService, error)) metrics.RunStats {
		backend, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			log.Fatal(err)
		}
		svc, err := mk(backend)
		if err != nil {
			log.Fatal(err)
		}
		cfg := train.DefaultConfig(train.ResNet18, spec)
		cfg.Epochs = 12
		job, err := train.NewJob(cfg, svc)
		if err != nil {
			log.Fatal(err)
		}
		rs := job.Run()
		fmt.Printf("\n%s:\n", name)
		for _, e := range rs.Epochs {
			fmt.Printf("  epoch %2d: %8s total, %8s stalled on I/O, hit ratio %5.1f%%, top-1 %.2f%%\n",
				e.Epoch, e.Duration.Round(time.Millisecond), e.IOStall.Round(time.Millisecond),
				100*e.Cache.HitRatio(), e.Top1)
		}
		return rs
	}

	def := run("Default (LRU cache, uniform sampling)", func(b *storage.Backend) (train.DataService, error) {
		return cache.NewDefault(b, capBytes, cache.DefaultServiceConfig()), nil
	})
	ic := run("iCache (IIS + H-cache + L-cache)", func(b *storage.Backend) (train.DataService, error) {
		return icache.NewServer(b, icache.DefaultConfig(capBytes), sampling.DefaultIIS(), 42)
	})

	fmt.Printf("\nsteady-state speedup (last 4 epochs): %.2fx\n",
		float64(tail(def, 4).AvgEpochTime())/float64(tail(ic, 4).AvgEpochTime()))
}

// tail keeps the last n epochs of a run.
func tail(rs metrics.RunStats, n int) metrics.RunStats {
	if len(rs.Epochs) > n {
		rs.Epochs = rs.Epochs[len(rs.Epochs)-n:]
	}
	return rs
}

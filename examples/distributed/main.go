// Distributed: data-parallel training on a two-node cluster over a shared
// NFS backend, reproducing §V-G in miniature. The distributed iCache keeps
// a shared key-value directory so no sample is cached twice; the baseline
// runs an uncoordinated LRU per node. Compare epoch times, remote-cache
// hits, and directory occupancy.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"icache/internal/cache"
	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func main() {
	spec := dataset.Spec{Name: "mini-cifar", NumSamples: 20000, MeanSampleBytes: 3073, Seed: 5}
	perNode := spec.TotalBytes() / 5
	const nodes = 2

	runDist := func(name string, mk func(*storage.Backend) (train.DistService, error)) metrics.RunStats {
		backend, err := storage.NewBackend(spec, storage.NFS())
		if err != nil {
			log.Fatal(err)
		}
		svc, err := mk(backend)
		if err != nil {
			log.Fatal(err)
		}
		cfg := train.DefaultConfig(train.ResNet18, spec)
		cfg.Epochs = 8
		job, err := train.NewDistJob(cfg, svc)
		if err != nil {
			log.Fatal(err)
		}
		rs := job.Run()
		fmt.Printf("%-16s avg epoch %8s, hit ratio %.1f%%\n",
			name, rs.AvgEpochTime().Round(time.Millisecond), 100*rs.TotalCache().HitRatio())
		return rs
	}

	fmt.Printf("%d-node data-parallel training, shared NFS backend:\n", nodes)
	def := runDist("default (LRU/node)", func(b *storage.Backend) (train.DistService, error) {
		return cache.NewDistDefault(b, nodes, perNode, cache.DefaultServiceConfig()), nil
	})

	var cluster *icache.Cluster
	ic := runDist("distributed iCache", func(b *storage.Backend) (train.DistService, error) {
		cl, err := icache.NewCluster(b, icache.DefaultClusterConfig(nodes, perNode), sampling.DefaultIIS(), 42)
		cluster = cl
		return cl, err
	})

	fmt.Printf("\nspeedup: %.2fx\n", float64(def.AvgEpochTime())/float64(ic.AvgEpochTime()))
	fmt.Printf("remote-cache hits: %d; directory entries: %d (no sample cached twice)\n",
		cluster.RemoteHits(), cluster.DirectoryLen())
}

// Multijob: two training jobs (a light ShuffleNet and a heavy ResNet50)
// share one iCache server on the same dataset, reproducing §V-H in
// miniature: the coordinator probes each job's caching benefit, aggregates
// relative importance values, and manages the shared cache for the joint
// good. Compare against the same two jobs on an uncoordinated shared LRU.
//
//	go run ./examples/multijob
package main

import (
	"fmt"
	"log"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func main() {
	spec := dataset.Spec{Name: "mini-cifar", NumSamples: 20000, MeanSampleBytes: 3073, Seed: 3}
	capBytes := spec.TotalBytes() / 5

	backend, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		log.Fatal(err)
	}
	srv, err := icache.NewServer(backend, icache.DefaultConfig(capBytes), sampling.DefaultIIS(), 42)
	if err != nil {
		log.Fatal(err)
	}
	coord := icache.NewCoordinator(srv, icache.CoordAIV)

	shuffleHandle, err := coord.Register("shufflenet", sampling.DefaultIIS())
	if err != nil {
		log.Fatal(err)
	}
	resnetHandle, err := coord.Register("resnet50", sampling.DefaultIIS())
	if err != nil {
		log.Fatal(err)
	}

	mkJob := func(model train.ModelProfile, svc train.DataService, seed int64) *train.Job {
		cfg := train.DefaultConfig(model, spec)
		cfg.Epochs = 8
		cfg.Seed = seed
		job, err := train.NewJob(cfg, svc)
		if err != nil {
			log.Fatal(err)
		}
		return job
	}
	jobA := mkJob(train.ShuffleNet, shuffleHandle, 1)
	jobB := mkJob(train.ResNet50, resnetHandle, 2)

	// Interleave the two jobs on the shared virtual timeline so the cache
	// and the storage backend see their requests in time order.
	train.RunConcurrent(jobA, jobB)

	report := func(name string, job *train.Job, handle *icache.JobHandle) {
		rs := job.Results()
		ratio, eligible, err := coord.Benefit(handle.ID())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s avg epoch %8s, final top-1 %.2f%%, hit ratio %.1f%%, caching benefit %.2f (eligible=%v)\n",
			name, rs.AvgEpochTime().Round(time.Millisecond), rs.FinalTop1(),
			100*totalHit(rs), ratio, eligible)
	}
	fmt.Println("two jobs sharing one iCache (AIV coordination):")
	report("shufflenet", jobA, shuffleHandle)
	report("resnet50", jobB, resnetHandle)
	fmt.Printf("shared H-list: %d samples; cache regions: H=%d L=%d\n",
		srv.ActiveHList().Len(), srv.HCacheLen(), srv.LCacheLen())
}

func totalHit(rs metrics.RunStats) float64 { return rs.TotalCache().HitRatio() }

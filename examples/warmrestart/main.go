// Warmrestart: the operational story of a cache-service restart. A live
// iCache server warms up over a few epochs, checkpoints, and dies; a
// replacement restores the checkpoint (rehydrating payloads from the
// backend) and serves its first batches at full hit ratio — no cold-start
// tax on the training job, whose client rides through the restart with a
// transparent reconnect.
//
//	go run ./examples/warmrestart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/rpc"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func main() {
	spec := dataset.Spec{Name: "demo", NumSamples: 10000, MeanSampleBytes: 3073, Seed: 7}
	ckpt := filepath.Join(os.TempDir(), "icache-warmrestart.ckpt")
	defer os.Remove(ckpt)

	newServer := func() *rpc.Server {
		backend, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			log.Fatal(err)
		}
		cacheSrv, err := icache.NewServer(backend, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 42)
		if err != nil {
			log.Fatal(err)
		}
		source, err := storage.NewDataSource(spec)
		if err != nil {
			log.Fatal(err)
		}
		return rpc.NewServer(cacheSrv, source)
	}

	// First lifetime, on a fixed port so the client can reconnect.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	srv1 := newServer()
	go srv1.Serve(ln)

	client, err := rpc.Dial(addr, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	tracker, _ := sampling.NewTracker(spec.NumSamples, 2.3, 0.3)
	loss, _ := train.NewLossModel(spec, 0)
	rng := rand.New(rand.NewSource(1))

	runEpoch := func(epoch int) {
		loss.BeginEpoch(epoch)
		sched, hlist := sampling.IISSchedule(tracker, sampling.DefaultIIS(), rng)
		if err := client.UpdateImportance(hlist.Items); err != nil {
			log.Fatal(err)
		}
		if err := client.BeginEpoch(epoch); err != nil {
			log.Fatal(err)
		}
		for _, batch := range sched.Batches(256) {
			samples, err := client.GetBatch(batch)
			if err != nil {
				log.Fatal(err)
			}
			for _, s := range samples {
				tracker.Observe(s.ID, loss.Train(s.ID))
			}
		}
		st, _ := client.Stats()
		fmt.Printf("epoch %d: server hits=%d misses=%d subs=%d (hcache=%d)\n",
			epoch, st.Hits, st.Misses, st.Substitutions, st.HCacheLen)
	}

	fmt.Println("-- first server lifetime: warming up --")
	for e := 0; e < 3; e++ {
		runEpoch(e)
	}
	if err := srv1.SaveCheckpointFile(ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- checkpoint saved; killing the server --")
	srv1.Close()

	// Second lifetime on the same address: warm restore.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	srv2 := newServer()
	if _, err := srv2.LoadCheckpointFile(ckpt, true); err != nil {
		log.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()
	fmt.Println("-- replacement server restored warm; training continues --")
	runEpoch(3) // the client reconnects transparently

	m := srv2.Metrics()
	fmt.Printf("post-restart: hit ratio %.1f%% with %d H-residents already in place\n",
		100*m.HitRatio, m.HCacheLen)
}

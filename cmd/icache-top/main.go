// Command icache-top is a terminal cluster monitor for icache deployments:
// it polls each node's metrics endpoint (/metrics?format=prom) and
// in-process timeline (/debug/timeline) and renders a one-row-per-node
// view of request/hit/shed rates, overload-gate and breaker state,
// prefetch timeliness, the dominant eviction reason, membership activity
// and the current epoch — plus a req/s sparkline per node from the
// timeline ring.
//
// Usage:
//
//	icache-top -nodes 127.0.0.1:7830,127.0.0.1:7832            # live view
//	icache-top -nodes 127.0.0.1:7830,127.0.0.1:7832 -once      # one frame
//
// The addresses are the nodes' -metrics-addr endpoints, not their cache
// listen ports. Rates come from each node's own timeline ring, so even
// -once reports meaningful per-second figures.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"icache/internal/top"
)

func main() {
	nodes := flag.String("nodes", "127.0.0.1:7830", "comma-separated metrics addresses of the nodes to watch")
	interval := flag.Duration("interval", 2*time.Second, "poll period")
	once := flag.Bool("once", false, "render a single frame and exit (no screen clearing)")
	timeout := flag.Duration("timeout", 3*time.Second, "per-node scrape timeout")
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("icache-top: -nodes is empty")
	}
	client := &http.Client{Timeout: *timeout}

	render := func() {
		views := top.Collect(client, addrs)
		if !*once {
			fmt.Print("\033[H\033[2J") // home + clear: repaint in place
		}
		fmt.Printf("icache-top — %d node(s), %s\n\n", len(addrs), time.Now().Format("15:04:05"))
		top.Render(os.Stdout, views)
	}

	render()
	if *once {
		return
	}
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for range tick.C {
		render()
	}
}

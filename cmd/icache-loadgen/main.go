// Command icache-loadgen drives an iCache server with open-loop,
// coordinated-omission-safe load and prints a JSON report: achieved
// samples/sec plus latency percentiles measured from each request's
// scheduled start.
//
// Typical use against a running server:
//
//	icache-loadgen -addr 127.0.0.1:9000 -keys 4096 -rate 200000 \
//	    -duration 30s -mix zipf
//
// -rate 0 removes the schedule and probes saturation. -smoke needs no
// server: it boots an in-process serving stack over loopback, warms a hot
// set, and runs a short saturation burst — the CI-facing end-to-end check
// wired into `make loadgen-smoke`.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/loadgen"
	"icache/internal/rpc"
	"icache/internal/sampling"
	"icache/internal/storage"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server address (host:port); required unless -smoke")
		conns    = flag.Int("conns", 8, "client connections")
		batch    = flag.Int("batch", 16, "samples per GetBatch request")
		rate     = flag.Float64("rate", 0, "offered samples/sec across all connections (0 = saturation)")
		duration = flag.Duration("duration", 10*time.Second, "measured run length")
		maxReqs  = flag.Int64("max-requests", 0, "stop after this many requests (0 = duration only)")
		mix      = flag.String("mix", "zipf", "key mix: uniform | zipf | diurnal")
		zipfS    = flag.Float64("zipf-s", 1.2, "zipf skew exponent (> 1)")
		keys     = flag.Int("keys", 0, "keyspace size: ids drawn from [0, keys); required unless -smoke")
		seed     = flag.Int64("seed", 1, "mix RNG seed")
		warmup   = flag.Duration("warmup", 0, "unrecorded warmup before the measured run")
		deadline = flag.Duration("deadline", 0, "per-request deadline measured from the scheduled start; responses past it count as expired, not goodput (0 = none)")
		smoke    = flag.Bool("smoke", false, "self-contained smoke run against an in-process server")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Addr:        *addr,
		Conns:       *conns,
		Batch:       *batch,
		Rate:        *rate,
		Duration:    *duration,
		MaxRequests: *maxReqs,
		Mix:         *mix,
		ZipfS:       *zipfS,
		Keys:        *keys,
		Seed:        *seed,
		Warmup:      *warmup,
		Deadline:    *deadline,
	}

	if *smoke {
		srv, smokeAddr, err := startSmokeServer()
		if err != nil {
			fmt.Fprintf(os.Stderr, "icache-loadgen: smoke server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		cfg.Addr = smokeAddr
		cfg.Keys = smokeKeys
		cfg.Conns = 4
		cfg.Batch = 8
		cfg.Rate = 0
		cfg.Duration = 2 * time.Second
		cfg.Warmup = 200 * time.Millisecond
		cfg.Mix = "zipf"
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icache-loadgen: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(rep.JSON())
	if *smoke {
		if rep.Errors > 0 || rep.Samples == 0 {
			fmt.Fprintf(os.Stderr, "icache-loadgen: smoke failed: %d errors, %d samples\n",
				rep.Errors, rep.Samples)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "icache-loadgen: smoke ok")
	}
}

// smokeKeys is the smoke keyspace — small enough that the zipf head is
// resident after warmup, so the run exercises the hit path.
const smokeKeys = 512

// startSmokeServer boots a loopback serving stack over a synthetic
// dataset for the self-contained smoke run.
func startSmokeServer() (*rpc.Server, string, error) {
	spec := dataset.Spec{Name: "loadgen-smoke", NumSamples: smokeKeys, MeanSampleBytes: 4096, Seed: 7}
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		return nil, "", err
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() / 2)
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		return nil, "", err
	}
	src, err := storage.NewDataSource(spec)
	if err != nil {
		return nil, "", err
	}
	srv := rpc.NewServer(cacheSrv, src)
	srv.Logf = nil
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

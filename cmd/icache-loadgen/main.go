// Command icache-loadgen drives an iCache server with open-loop,
// coordinated-omission-safe load and prints a JSON report: achieved
// samples/sec plus latency percentiles measured from each request's
// scheduled start.
//
// Typical use against a running server:
//
//	icache-loadgen -addr 127.0.0.1:9000 -keys 4096 -rate 200000 \
//	    -duration 30s -mix zipf
//
// -rate 0 removes the schedule and probes saturation. -smoke needs no
// server: it boots an in-process serving stack over loopback, warms a hot
// set, and runs a short saturation burst — the CI-facing end-to-end check
// wired into `make loadgen-smoke`.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/loadgen"
	"icache/internal/rpc"
	"icache/internal/sampling"
	"icache/internal/storage"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server address (host:port); required unless -smoke")
		conns    = flag.Int("conns", 8, "client connections")
		batch    = flag.Int("batch", 16, "samples per GetBatch request")
		rate     = flag.Float64("rate", 0, "offered samples/sec across all connections (0 = saturation)")
		duration = flag.Duration("duration", 10*time.Second, "measured run length")
		maxReqs  = flag.Int64("max-requests", 0, "stop after this many requests (0 = duration only)")
		mix      = flag.String("mix", "zipf", "key mix: uniform | zipf | diurnal")
		zipfS    = flag.Float64("zipf-s", 1.2, "zipf skew exponent (> 1)")
		keys     = flag.Int("keys", 0, "keyspace size: ids drawn from [0, keys); required unless -smoke")
		seed     = flag.Int64("seed", 1, "mix RNG seed")
		warmup   = flag.Duration("warmup", 0, "unrecorded warmup before the measured run")
		deadline = flag.Duration("deadline", 0, "per-request deadline measured from the scheduled start; responses past it count as expired, not goodput (0 = none)")
		smoke    = flag.Bool("smoke", false, "self-contained smoke run against an in-process server")

		epochSamples = flag.Int("epoch-samples", 0, "epoch-boundary mode: samples selected (and accessed once) per epoch (0 = classic stream mode)")
		epochs       = flag.Int("epochs", 5, "epoch-boundary mode: number of epochs")
		clairvoyant  = flag.Bool("clairvoyant", false, "epoch-boundary mode: push each epoch's schedule ahead of its accesses (BeginEpochPlan)")
		prefSmoke    = flag.Bool("prefetch-smoke", false, "self-contained clairvoyant epoch-mode smoke against an in-process planning server")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Addr:         *addr,
		Conns:        *conns,
		Batch:        *batch,
		Rate:         *rate,
		Duration:     *duration,
		MaxRequests:  *maxReqs,
		Mix:          *mix,
		ZipfS:        *zipfS,
		Keys:         *keys,
		Seed:         *seed,
		Warmup:       *warmup,
		Deadline:     *deadline,
		EpochSamples: *epochSamples,
		Epochs:       *epochs,
		Clairvoyant:  *clairvoyant,
	}

	if *prefSmoke {
		runPrefetchSmoke(cfg)
		return
	}

	if *smoke {
		srv, smokeAddr, err := startSmokeServer()
		if err != nil {
			fmt.Fprintf(os.Stderr, "icache-loadgen: smoke server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		cfg.Addr = smokeAddr
		cfg.Keys = smokeKeys
		cfg.Conns = 4
		cfg.Batch = 8
		cfg.Rate = 0
		cfg.Duration = 2 * time.Second
		cfg.Warmup = 200 * time.Millisecond
		cfg.Mix = "zipf"
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icache-loadgen: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(rep.JSON())
	if *smoke {
		if rep.Errors > 0 || rep.Samples == 0 {
			fmt.Fprintf(os.Stderr, "icache-loadgen: smoke failed: %d errors, %d samples\n",
				rep.Errors, rep.Samples)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "icache-loadgen: smoke ok")
	}
}

// runPrefetchSmoke is the CI-facing end-to-end check of the clairvoyant
// planner (`make prefetch-smoke`): it boots an in-process planning server,
// runs the epoch-boundary workload with the schedule pushed ahead of its
// accesses, and asserts that later epochs run nearly cold-miss-free while
// the prefetch-outcome ledger stays exactly conserved.
func runPrefetchSmoke(cfg loadgen.Config) {
	srv, addr, err := startPrefetchSmokeServer()
	if err != nil {
		fmt.Fprintf(os.Stderr, "icache-loadgen: prefetch-smoke server: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	cfg.Addr = addr
	cfg.Keys = smokeKeys
	cfg.Conns = 4
	cfg.Batch = 8
	cfg.Rate = 20000
	cfg.EpochSamples = 192
	cfg.Epochs = 5
	cfg.Clairvoyant = true
	cfg.Seed = 1

	rep, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icache-loadgen: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(rep.JSON())

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "icache-loadgen: prefetch-smoke failed: "+format+"\n", args...)
		os.Exit(1)
	}
	if rep.Errors > 0 || rep.Samples == 0 {
		fail("%d errors, %d samples", rep.Errors, rep.Samples)
	}
	if len(rep.EpochMisses) != cfg.Epochs {
		fail("got %d epoch miss counts, want %d", len(rep.EpochMisses), cfg.Epochs)
	}
	first, last := rep.EpochMisses[0], rep.EpochMisses[len(rep.EpochMisses)-1]
	if first == 0 {
		fail("first epoch saw no cold misses — the baseline epoch never hit the backend")
	}
	if last > first/5 {
		fail("last epoch cold misses %d > first/5 (%d/5) — the plan is not pre-placing", last, first)
	}
	d := srv.DecisionStats()
	if got := d.PrefetchInTime + d.PrefetchLate + d.PrefetchWasted + d.PrefetchDropped; got != d.PrefetchIssued {
		fail("prefetch ledger unbalanced: in_time %d + late %d + wasted %d + dropped %d = %d != issued %d",
			d.PrefetchInTime, d.PrefetchLate, d.PrefetchWasted, d.PrefetchDropped, got, d.PrefetchIssued)
	}
	fmt.Fprintf(os.Stderr, "icache-loadgen: prefetch-smoke ok (cold misses %v, in-time %d/%d)\n",
		rep.EpochMisses, d.PrefetchInTime, d.PrefetchIssued)
}

// startPrefetchSmokeServer boots a loopback serving stack tuned so the
// clairvoyant planner is the only prefetch source: all-H policy (L-cache
// off), H capacity comfortably above the per-epoch selection, planner on.
func startPrefetchSmokeServer() (*rpc.Server, string, error) {
	spec := dataset.Spec{Name: "prefetch-smoke", NumSamples: smokeKeys, MeanSampleBytes: 4096, Seed: 7}
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		return nil, "", err
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() * 3 / 4)
	cfg.EnableLCache = false
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		return nil, "", err
	}
	src, err := storage.NewDataSource(spec)
	if err != nil {
		return nil, "", err
	}
	srv := rpc.NewServer(cacheSrv, src)
	srv.Logf = nil
	srv.SetClairvoyant(rpc.PlanConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// smokeKeys is the smoke keyspace — small enough that the zipf head is
// resident after warmup, so the run exercises the hit path.
const smokeKeys = 512

// startSmokeServer boots a loopback serving stack over a synthetic
// dataset for the self-contained smoke run.
func startSmokeServer() (*rpc.Server, string, error) {
	spec := dataset.Spec{Name: "loadgen-smoke", NumSamples: smokeKeys, MeanSampleBytes: 4096, Seed: 7}
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		return nil, "", err
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() / 2)
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		return nil, "", err
	}
	src, err := storage.NewDataSource(spec)
	if err != nil {
		return nil, "", err
	}
	srv := rpc.NewServer(cacheSrv, src)
	srv.Logf = nil
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

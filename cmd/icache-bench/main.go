// Command icache-bench regenerates the paper's tables and figures from the
// simulation. Each experiment ID corresponds to one artifact in the paper's
// evaluation; see DESIGN.md's per-experiment index.
//
// Usage:
//
//	icache-bench -list
//	icache-bench -exp fig8
//	icache-bench -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"icache/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment ID to run (or 'all')")
		quick  = flag.Bool("quick", false, "reduced epochs and dataset scale for a fast pass")
		seed   = flag.Int64("seed", 0, "seed offset for run-to-run variation")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		format = flag.String("format", "table", "output format: table, csv, json")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icache-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "table":
			rep.Print(os.Stdout)
			fmt.Printf("  (%s completed in %s wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
		case "csv":
			if err := rep.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "icache-bench: %s: %v\n", id, err)
				os.Exit(1)
			}
		case "json":
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "icache-bench: %s: %v\n", id, err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "icache-bench: unknown -format %q\n", *format)
			os.Exit(2)
		}
	}
}

// Command icache-gen materializes a synthetic dataset into a packed file
// that icache-server can serve with -dataset-file: the deployment where
// training data lives on disk rather than being generated on demand.
//
// Usage:
//
//	icache-gen -dataset cifar10 -out /data/cifar10.pack
//	icache-server -dataset cifar10 -dataset-file /data/cifar10.pack
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"icache/internal/dataset"
	"icache/internal/storage"
)

func main() {
	var (
		dsName = flag.String("dataset", "cifar10", "dataset: cifar10, imagenet, imagenet-10pct")
		out    = flag.String("out", "", "output file path (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: icache-gen -dataset cifar10 -out path.pack")
		os.Exit(2)
	}
	var spec dataset.Spec
	switch *dsName {
	case "cifar10":
		spec = dataset.CIFAR10()
	case "imagenet":
		spec = dataset.ImageNet()
	case "imagenet-10pct":
		spec = dataset.ImageNetScaled()
	default:
		log.Fatalf("icache-gen: unknown dataset %q", *dsName)
	}
	start := time.Now()
	if err := storage.WriteDatasetFile(*out, spec); err != nil {
		log.Fatalf("icache-gen: %v", err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("icache-gen: wrote %s (%d samples, %d MB) in %s",
		*out, spec.NumSamples, info.Size()>>20, time.Since(start).Round(time.Millisecond))
}

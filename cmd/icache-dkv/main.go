// Command icache-dkv runs the shared key-value directory service of the
// paper's §III-E: distributed cache nodes register which samples they hold
// so no sample is cached twice and misses can be served from a peer's DRAM.
//
// Usage:
//
//	icache-dkv -addr :7821
//
// Cache nodes join with `icache-server -node-id N -dir <addr> -peers ...`.
//
// The directory can be partitioned across N replicas (sharded by sample ID
// via rendezvous hashing — see internal/dkv/ring.go): start each replica
// with a distinct -replica-id and point -peers at the others, e.g.
//
//	icache-dkv -addr :7821 -replica-id 0 -peers 1=host2:7821,2=host3:7821
//
// Replicas lease-track each other, exchange epoch-numbered ring views every
// -ring-interval, and hand shards off when a peer's lease expires. Cache
// servers then list every replica in -dir (comma-separated).
//
// With -debug-addr the service also exposes an observability surface: the
// per-request latency histogram and trace-ring summary at /debug/obs, and
// (with -pprof) the net/http/pprof handlers. With -trace-csv, directory
// spans of traced cache requests are dumped at shutdown so icache-trace
// can place the directory hop in the cross-node chain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"icache/internal/dkv"
	"icache/internal/obs"
	"icache/internal/overload"
	"icache/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7821", "listen address")
	leaseTTL := flag.Duration("lease-ttl", dkv.DefaultLeaseTTL, "default membership lease TTL granted to nodes that register without one")
	suspect := flag.Duration("suspect-window", dkv.DefaultSuspectWindow, "how long past lease expiry a node stays routable before it is declared dead")
	debugAt := flag.String("debug-addr", "", "serve /debug/obs on this address (e.g. :7831); also arms the per-request latency histogram")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof on the debug address (requires -debug-addr)")
	traceCSV := flag.String("trace-csv", "", "dump directory-side spans of traced requests to this CSV file at shutdown; also arms span recording")
	traceMax := flag.Int("trace-csv-max-mb", 0, "cap the shutdown trace CSV at this many MB, keeping the newest events (0 = unlimited); the previous dump is rotated to <file>.1")
	replicaID := flag.Int("replica-id", 0, "this replica's ID in a partitioned directory (used with -peers)")
	peersFlag := flag.String("peers", "", "comma-separated id=addr list of the OTHER directory replicas (e.g. 1=host2:7821,2=host3:7821); enables replica mode")
	ringInterval := flag.Duration("ring-interval", time.Second, "how often replicas exchange ring views (replica mode)")
	handoffBatch := flag.Int("handoff-batch", 4096, "max directory entries dropped per shard hand-off sweep (replica mode; 0 = unbounded)")
	maxInfl := flag.Int("max-inflight", 0, "admission control: max concurrently admitted data-plane requests before shedding (0 disables the cap; liveness traffic is never gated)")
	targetQD := flag.Duration("target-queue-delay", 0, "admission control: standing queue delay that triggers brownout/shedding, CoDel-style (0 disables the delay ladder)")
	flag.Parse()

	dir := dkv.NewDirectory()
	dir.SetMembershipParams(*leaseTTL, *suspect)
	srv := dkv.NewDirServer(dir)
	// Control-plane journal: membership flips and shard hand-offs are rare
	// events, so the journal is always-on.
	journal := obs.NewJournal(1024)
	srv.SetJournal(journal)
	if *maxInfl > 0 || *targetQD > 0 {
		srv.SetAdmission(overload.NewGate(overload.GateConfig{
			MaxInflight: *maxInfl,
			TargetDelay: *targetQD,
		}))
		log.Printf("icache-dkv: admission gate armed (max-inflight=%d, target-queue-delay=%s)",
			*maxInfl, *targetQD)
	}

	ringStop := make(chan struct{})
	if *peersFlag != "" {
		peers, err := parsePeers(*peersFlag, *replicaID)
		if err != nil {
			log.Fatalf("icache-dkv: -peers: %v", err)
		}
		srv.EnableReplica(dkv.ReplicaConfig{
			Self:          dkv.ReplicaID(*replicaID),
			Peers:         peers,
			LeaseTTL:      *leaseTTL,
			SuspectWindow: *suspect,
			HandoffBatch:  *handoffBatch,
		})
		go srv.RunRingExchange(*ringInterval, ringStop)
		log.Printf("icache-dkv: replica %d of a partitioned directory (%d peers)", *replicaID, len(peers))
	}

	var tracer *trace.Recorder
	if *traceCSV != "" {
		tracer = trace.NewRecorder(1 << 18)
	}
	var reg *obs.Registry
	if *debugAt != "" {
		reg = obs.NewRegistry()
	}
	if reg != nil || tracer != nil {
		srv.EnableObs(reg, tracer)
	}

	var debugSrv *http.Server
	var tlStop chan struct{}
	if *debugAt != "" {
		mux := http.NewServeMux()
		mux.Handle("/debug/obs", srv.DebugObsHandler())
		// Directory-side timeline: ownership and membership counters once a
		// second, ten minutes of lookback.
		timeline := obs.NewTimeline(600, func() map[string]float64 {
			claims, denied := dir.Stats()
			ms := dir.Membership()
			return map[string]float64{
				"owned":             float64(dir.Len()),
				"claims":            float64(claims),
				"claims_denied":     float64(denied),
				"registers":         float64(ms.Registers),
				"heartbeats":        float64(ms.Heartbeats),
				"heartbeat_rejects": float64(ms.HeartbeatRejects),
				"suspects":          float64(ms.Suspects),
				"deaths":            float64(ms.Deaths),
				"revivals":          float64(ms.Revivals),
				"reclaims":          float64(ms.Reclaims),
				"purged":            float64(ms.Purged),
			}
		})
		tlStop = make(chan struct{})
		go timeline.Run(time.Second, tlStop)
		mux.Handle("/debug/timeline", timeline.Handler())
		mux.Handle("/debug/journal", journal.Handler(nil))
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		debugSrv = &http.Server{Addr: *debugAt, Handler: mux}
		go func() {
			log.Printf("icache-dkv: debug on http://%s/debug/obs", *debugAt)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("icache-dkv: debug: %v", err)
			}
		}()
	} else if *pprofOn {
		log.Printf("icache-dkv: -pprof ignored (requires -debug-addr)")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("icache-dkv: shutting down")
		if tlStop != nil {
			close(tlStop)
		}
		if debugSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := debugSrv.Shutdown(ctx); err != nil {
				log.Printf("icache-dkv: debug shutdown: %v", err)
			}
			cancel()
		}
		if tracer != nil {
			if _, err := os.Stat(*traceCSV); err == nil {
				if err := os.Rename(*traceCSV, *traceCSV+".1"); err != nil {
					log.Printf("icache-dkv: trace rotate: %v", err)
				}
			}
			if f, err := os.Create(*traceCSV); err != nil {
				log.Printf("icache-dkv: trace dump: %v", err)
			} else {
				cut, err := tracer.WriteCSVLimited(f, int64(*traceMax)<<20)
				if err != nil {
					log.Printf("icache-dkv: trace dump: %v", err)
				}
				f.Close()
				log.Printf("icache-dkv: trace (%d events retained, %d total, %d cut by size cap) dumped to %s",
					tracer.Len(), tracer.Total(), cut, *traceCSV)
			}
		}
		close(ringStop)
		srv.CloseReplica()
		srv.Close()
	}()
	log.Printf("icache-dkv: directory service listening on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Printf("icache-dkv: %v", err)
	}
}

// parsePeers parses the -peers flag's comma-separated id=addr list.
func parsePeers(s string, self int) (map[dkv.ReplicaID]string, error) {
	peers := make(map[dkv.ReplicaID]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("entry %q is not id=addr", part)
		}
		id, err := strconv.Atoi(part[:eq])
		if err != nil {
			return nil, fmt.Errorf("entry %q: bad replica id: %v", part, err)
		}
		addr := part[eq+1:]
		if addr == "" {
			return nil, fmt.Errorf("entry %q: empty address", part)
		}
		if id == self {
			return nil, fmt.Errorf("entry %q names this replica (-replica-id %d)", part, self)
		}
		if prev, dup := peers[dkv.ReplicaID(id)]; dup {
			return nil, fmt.Errorf("replica %d listed twice (%s, %s)", id, prev, addr)
		}
		peers[dkv.ReplicaID(id)] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("no peers in %q", s)
	}
	return peers, nil
}

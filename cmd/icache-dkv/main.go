// Command icache-dkv runs the shared key-value directory service of the
// paper's §III-E: distributed cache nodes register which samples they hold
// so no sample is cached twice and misses can be served from a peer's DRAM.
//
// Usage:
//
//	icache-dkv -addr :7821
//
// Cache nodes join with `icache-server -node-id N -dir <addr> -peers ...`.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"icache/internal/dkv"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7821", "listen address")
	leaseTTL := flag.Duration("lease-ttl", dkv.DefaultLeaseTTL, "default membership lease TTL granted to nodes that register without one")
	suspect := flag.Duration("suspect-window", dkv.DefaultSuspectWindow, "how long past lease expiry a node stays routable before it is declared dead")
	flag.Parse()

	dir := dkv.NewDirectory()
	dir.SetMembershipParams(*leaseTTL, *suspect)
	srv := dkv.NewDirServer(dir)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("icache-dkv: shutting down")
		srv.Close()
	}()
	log.Printf("icache-dkv: directory service listening on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Printf("icache-dkv: %v", err)
	}
}

// Command icache-train drives a live icache-server the way the paper's
// PyTorch client does: per epoch it selects samples with I/O-oriented
// importance sampling, fetches them in mini-batches over the wire, feeds
// observed losses back into the importance tracker, and pushes the fresh
// H-list to the server. It plays the role of the Python training loop,
// with the simulated loss model standing in for real SGD.
//
// Usage (with icache-server running):
//
//	icache-train -addr 127.0.0.1:7820 -dataset cifar10 -epochs 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/rpc"
	"icache/internal/sampling"
	"icache/internal/trace"
	"icache/internal/train"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7820", "icache-server address")
		dsName  = flag.String("dataset", "cifar10", "dataset the server hosts")
		epochs  = flag.Int("epochs", 3, "epochs to run")
		bs      = flag.Int("batch", 256, "mini-batch size")
		workers = flag.Int("workers", 4, "concurrent fetch workers (one connection each, like PyTorch data workers)")
		seed    = flag.Int64("seed", 1, "sampler seed")
		clairv  = flag.Bool("clairvoyant", false, "push each epoch's full schedule at the boundary (BeginEpochPlan) so a planning server pre-places the working set; falls back to a plain epoch boundary when the server has no planner")
		timeout = flag.Duration("timeout", 5*time.Second, "dial timeout")
		traceN  = flag.Int("trace-sample", 0, "trace 1 in N GetBatch requests end to end (0 disables); traced requests carry a trace envelope the server and its peers record spans under")
		traceTo = flag.String("trace-csv", "", "dump the client-side spans of traced requests to this CSV at exit (combine with the server's -trace-csv in icache-trace)")
	)
	flag.Parse()

	var spec dataset.Spec
	switch *dsName {
	case "cifar10":
		spec = dataset.CIFAR10()
	case "imagenet":
		spec = dataset.ImageNet()
	case "imagenet-10pct":
		spec = dataset.ImageNetScaled()
	default:
		log.Fatalf("icache-train: unknown dataset %q", *dsName)
	}

	if *workers < 1 {
		log.Fatalf("icache-train: -workers %d, want >= 1", *workers)
	}
	// Request tracing: one shared recorder and 1-in-N sampler across all
	// worker connections, so "1 in N" holds globally.
	var tracer *trace.Recorder
	var sampler *obs.Sampler
	if *traceN > 0 {
		tracer = trace.NewRecorder(1 << 18)
		sampler = obs.NewSampler(*traceN)
	}

	// One connection per worker, like PyTorch's per-worker loader processes.
	clients := make([]*rpc.Client, *workers)
	for w := range clients {
		c, err := rpc.Dial(*addr, *timeout)
		if err != nil {
			log.Fatalf("icache-train: %v", err)
		}
		defer c.Close()
		if tracer != nil {
			c.EnableObs(nil, tracer, sampler)
		}
		clients[w] = c
	}
	client := clients[0]
	if err := client.Ping(); err != nil {
		log.Fatalf("icache-train: server not responding: %v", err)
	}

	tracker, err := sampling.NewTracker(spec.NumSamples, 2.3, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	loss, err := train.NewLossModel(spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))

	for epoch := 0; epoch < *epochs; epoch++ {
		loss.BeginEpoch(epoch)
		sched, hlist := sampling.IISSchedule(tracker, sampling.DefaultIIS(), rng)
		if err := client.UpdateImportance(hlist.Items); err != nil {
			log.Fatalf("icache-train: push H-list: %v", err)
		}
		if *clairv {
			// Planned boundary: the sampler drew the whole epoch's access
			// order up front, so ship it with the boundary and let the
			// server pre-place the misses before the batches arrive. An
			// older or non-planning server rejects the opcode with an
			// application error; fall back to the plain boundary so the
			// flag is safe against any server.
			err := client.BeginEpochPlan(epoch, sched.Fetch)
			var se *rpc.ServerError
			if errors.As(err, &se) {
				log.Printf("icache-train: server rejected planned boundary (%v); falling back to -clairvoyant=false", err)
				*clairv = false
				err = client.BeginEpoch(epoch)
			}
			if err != nil {
				log.Fatalf("icache-train: begin epoch: %v", err)
			}
		} else if err := client.BeginEpoch(epoch); err != nil {
			log.Fatalf("icache-train: begin epoch: %v", err)
		}

		start := time.Now()
		batches := sched.Batches(*bs)
		// Workers fetch batches concurrently; results come back in order so
		// losses are observed in schedule order, like a real loader queue.
		type result struct {
			samples []rpc.Sample
			err     error
		}
		results := make([]chan result, len(batches))
		for i := range results {
			results[i] = make(chan result, 1)
		}
		next := make(chan int)
		go func() {
			for i := range batches {
				next <- i
			}
			close(next)
		}()
		for w := 0; w < *workers; w++ {
			go func(c *rpc.Client) {
				for i := range next {
					samples, err := c.GetBatch(batches[i])
					results[i] <- result{samples: samples, err: err}
				}
			}(clients[w])
		}
		var bytes int64
		trained := 0
		for i := range batches {
			r := <-results[i]
			if r.err != nil {
				log.Fatalf("icache-train: fetch: %v", r.err)
			}
			for _, s := range r.samples {
				if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
					log.Fatalf("icache-train: corrupt sample: %v", err)
				}
				bytes += int64(len(s.Payload))
				// "Train" the sample: observe its loss, update importance.
				tracker.Observe(s.ID, loss.Train(s.ID))
				trained++
			}
		}
		elapsed := time.Since(start)
		st, err := client.Stats()
		if err != nil {
			log.Fatalf("icache-train: stats: %v", err)
		}
		served := st.Hits + st.Misses + st.Substitutions
		hitRatio := float64(st.Hits+st.Substitutions) / float64(served)
		fmt.Printf("epoch %d: %d samples, %.1f MB in %s (%.0f samples/s) | server: hits=%d misses=%d subs=%d hit-ratio=%.1f%% hcache=%d lcache=%d pkgs=%d\n",
			epoch, trained, float64(bytes)/(1<<20), elapsed.Round(time.Millisecond),
			float64(trained)/elapsed.Seconds(),
			st.Hits, st.Misses, st.Substitutions, 100*hitRatio, st.HCacheLen, st.LCacheLen, st.Packages)
	}

	if tracer != nil {
		events := tracer.Snapshot()
		trace.PrintSpans(os.Stdout, trace.Chains(events), 3)
		if *traceTo != "" {
			f, err := os.Create(*traceTo)
			if err != nil {
				log.Fatalf("icache-train: trace dump: %v", err)
			}
			if err := tracer.WriteCSV(f); err != nil {
				log.Fatalf("icache-train: trace dump: %v", err)
			}
			f.Close()
			fmt.Printf("traced spans dumped to %s (analyze with icache-trace, merge with the server's CSV for the full hop chain)\n", *traceTo)
		}
	}
}

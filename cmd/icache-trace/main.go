// Command icache-trace analyzes a request-event trace dumped by
// icache-server's -trace-csv flag: event counts, hit ratio, epoch
// boundaries, the most-missed / most-substituted samples, and — when the
// dump carries span events from cross-node request tracing — the per-hop
// latency breakdown and the slowest request chains. This is the operator's
// view into *why* the cache behaves as it does.
//
// Usage:
//
//	icache-server -trace-csv /tmp/cache-trace.csv ...   # run, then stop
//	icache-trace /tmp/cache-trace.csv
//	icache-trace -slow 5 /tmp/cache-trace.csv           # 5 slowest chains
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"icache/internal/trace"
)

func main() {
	topN := flag.Int("top", 10, "how many samples to show in the rankings")
	slowN := flag.Int("slow", 0, "show the N slowest traced request chains with full hop detail")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: icache-trace [-top N] [-slow N] <trace.csv>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatalf("icache-trace: %v", err)
	}
	defer f.Close()
	events, err := trace.ReadCSV(f)
	if err != nil {
		log.Fatalf("icache-trace: %v", err)
	}
	trace.Analyze(events, *topN).Print(os.Stdout)
	trace.PrintSpans(os.Stdout, trace.Chains(events), *slowN)
}

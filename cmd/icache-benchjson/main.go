// Command icache-benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark runs can be archived and diffed
// (BENCH_serving.json in the repo root is produced this way by the
// `make bench-serving` target).
//
// Usage:
//
//	go test -bench . -benchmem ./internal/rpc/ | icache-benchjson -label after > bench.json
//	go test -bench . ./internal/rpc/ | icache-benchjson -update BENCH_serving.json
//	icache-benchjson -check BENCH_loadgen.json
//
// With -update, the run is written into the named combined document as its
// "after" section, preserving the archived "before" (pre-optimisation)
// measurements and prose; the file is created from scratch if missing.
//
// With -check, no input is read: the named archive's "after" section is
// compared against its "before" baseline per benchmark name (means across
// repeated -count entries) and the command exits non-zero when the after
// run regressed — throughput (samples/sec) down more than 10%, or
// allocations per op up by a whole allocation. This is the standing
// regression gate `make bench-loadgen` runs right after re-measuring.
//
// Each benchmark result line of the form
//
//	BenchmarkServeConcurrent/clients=8  471  2396476 ns/op  6676 samples/sec
//
// becomes one JSON object carrying the name, iteration count, ns/op, and
// every extra metric pair (B/op, allocs/op, custom ReportMetric units).
// Multiple -count runs of the same benchmark appear as repeated entries;
// consumers can aggregate however they like (the raw data is the record).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the full archived run.
type Document struct {
	Label     string            `json:"label,omitempty"`
	Timestamp string            `json:"timestamp"`
	Env       map[string]string `json:"env,omitempty"`
	Results   []Result          `json:"results"`
}

// Combined is the before/after archive shape used by BENCH_serving.json.
// Description, benchmark prose, and the summary table are free-form and
// preserved verbatim across -update runs.
type Combined struct {
	Description string          `json:"description,omitempty"`
	Benchmark   string          `json:"benchmark,omitempty"`
	Summary     json.RawMessage `json:"summary,omitempty"`
	Before      *Document       `json:"before,omitempty"`
	After       *Document       `json:"after,omitempty"`
}

// parseLine decodes one "Benchmark..." output line, or returns false for
// any other line (headers, PASS/ok, blank).
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Minimum shape: name, iterations, value, unit.
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

// parseEnvLine captures the go-test context header lines (goos, goarch,
// pkg, cpu) so the archived document records where it was measured.
func parseEnvLine(line string, env map[string]string) bool {
	for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
		prefix := key + ": "
		if strings.HasPrefix(line, prefix) {
			// pkg appears once per package; keep them all, comma-joined.
			val := strings.TrimPrefix(line, prefix)
			if prev, ok := env[key]; ok && key == "pkg" {
				val = prev + "," + val
			}
			env[key] = val
			return true
		}
	}
	return false
}

func main() {
	label := flag.String("label", "", "label stored in the output document (e.g. before, after)")
	update := flag.String("update", "", "write the run into this combined before/after archive as its 'after' section (preserving 'before') instead of printing to stdout")
	check := flag.String("check", "", "compare the named archive's 'after' run against its 'before' baseline and exit non-zero on regression (no stdin read)")
	flag.Parse()

	if *check != "" {
		if err := checkArchive(*check); err != nil {
			fmt.Fprintf(os.Stderr, "icache-benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	doc := Document{
		Label:     *label,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Env:       map[string]string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if parseEnvLine(line, doc.Env) {
			continue
		}
		if r, ok := parseLine(line); ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "icache-benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Env) == 0 {
		doc.Env = nil
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "icache-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *update != "" {
		if err := updateArchive(*update, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "icache-benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "icache-benchjson: updated %s (%d results)\n", *update, len(doc.Results))
		return
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "icache-benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}

// Regression thresholds for -check. Throughput is noisy run to run, so a
// drop must exceed 10% of the baseline mean to fail; allocs/op is nearly
// deterministic, so any rise of a whole allocation fails.
const (
	checkThroughputDrop = 0.10
	checkAllocsRise     = 0.5
)

// benchMeans aggregates repeated -count entries of one document into mean
// samples/sec and mean allocs/op per benchmark name (NaN when a metric was
// never reported for that benchmark).
type benchMeans struct {
	samplesPerSec map[string]float64
	allocsPerOp   map[string]float64
}

func meansOf(doc *Document) benchMeans {
	sums := map[string]map[string]float64{}
	counts := map[string]map[string]float64{}
	for _, r := range doc.Results {
		for _, metric := range []string{"samples/sec", "allocs/op"} {
			v, ok := r.Metrics[metric]
			if !ok {
				continue
			}
			if sums[metric] == nil {
				sums[metric] = map[string]float64{}
				counts[metric] = map[string]float64{}
			}
			sums[metric][r.Name] += v
			counts[metric][r.Name]++
		}
	}
	m := benchMeans{samplesPerSec: map[string]float64{}, allocsPerOp: map[string]float64{}}
	for name, s := range sums["samples/sec"] {
		m.samplesPerSec[name] = s / counts["samples/sec"][name]
	}
	for name, s := range sums["allocs/op"] {
		m.allocsPerOp[name] = s / counts["allocs/op"][name]
	}
	return m
}

// checkArchive compares the archive's after run against its before baseline
// and returns an error describing every regression found. Benchmarks that
// exist on only one side are skipped (renames must not fail the gate); a
// passing comparison prints one line per benchmark so the gate's output
// doubles as a throughput summary.
func checkArchive(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var arch Combined
	if err := json.Unmarshal(raw, &arch); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if arch.Before == nil || arch.After == nil {
		return fmt.Errorf("%s: archive needs both 'before' and 'after' runs to compare", path)
	}
	before, after := meansOf(arch.Before), meansOf(arch.After)
	var regressions []string
	compared := 0
	for name, b := range before.samplesPerSec {
		a, ok := after.samplesPerSec[name]
		if !ok || b <= 0 {
			continue
		}
		compared++
		ratio := a / b
		fmt.Fprintf(os.Stderr, "icache-benchjson: %s: %.0f -> %.0f samples/sec (%.2fx)\n", name, b, a, ratio)
		if ratio < 1-checkThroughputDrop {
			regressions = append(regressions,
				fmt.Sprintf("%s: samples/sec fell %.1f%% (%.0f -> %.0f)", name, (1-ratio)*100, b, a))
		}
	}
	for name, b := range before.allocsPerOp {
		a, ok := after.allocsPerOp[name]
		if !ok {
			continue
		}
		compared++
		if a > b+checkAllocsRise {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op rose %.1f -> %.1f", name, b, a))
		}
	}
	if compared == 0 {
		return fmt.Errorf("%s: no comparable benchmarks between before and after", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("regression vs %s baseline:\n  %s", arch.Before.Label, strings.Join(regressions, "\n  "))
	}
	return nil
}

// updateArchive merges doc into the combined archive at path as its
// "after" run. A pre-existing "before" section (the archived baseline) is
// never touched; if the file is new, the run doubles as the baseline.
func updateArchive(path string, doc *Document) error {
	var arch Combined
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &arch); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	arch.After = doc
	if arch.Before == nil {
		arch.Before = doc
	}
	out, err := json.MarshalIndent(&arch, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

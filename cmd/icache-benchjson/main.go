// Command icache-benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark runs can be archived and diffed
// (BENCH_serving.json in the repo root is produced this way by the
// `make bench-serving` target).
//
// Usage:
//
//	go test -bench . -benchmem ./internal/rpc/ | icache-benchjson -label after > bench.json
//	go test -bench . ./internal/rpc/ | icache-benchjson -update BENCH_serving.json
//
// With -update, the run is written into the named combined document as its
// "after" section, preserving the archived "before" (pre-optimisation)
// measurements and prose; the file is created from scratch if missing.
//
// Each benchmark result line of the form
//
//	BenchmarkServeConcurrent/clients=8  471  2396476 ns/op  6676 samples/sec
//
// becomes one JSON object carrying the name, iteration count, ns/op, and
// every extra metric pair (B/op, allocs/op, custom ReportMetric units).
// Multiple -count runs of the same benchmark appear as repeated entries;
// consumers can aggregate however they like (the raw data is the record).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the full archived run.
type Document struct {
	Label     string            `json:"label,omitempty"`
	Timestamp string            `json:"timestamp"`
	Env       map[string]string `json:"env,omitempty"`
	Results   []Result          `json:"results"`
}

// Combined is the before/after archive shape used by BENCH_serving.json.
// Description, benchmark prose, and the summary table are free-form and
// preserved verbatim across -update runs.
type Combined struct {
	Description string          `json:"description,omitempty"`
	Benchmark   string          `json:"benchmark,omitempty"`
	Summary     json.RawMessage `json:"summary,omitempty"`
	Before      *Document       `json:"before,omitempty"`
	After       *Document       `json:"after,omitempty"`
}

// parseLine decodes one "Benchmark..." output line, or returns false for
// any other line (headers, PASS/ok, blank).
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Minimum shape: name, iterations, value, unit.
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

// parseEnvLine captures the go-test context header lines (goos, goarch,
// pkg, cpu) so the archived document records where it was measured.
func parseEnvLine(line string, env map[string]string) bool {
	for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
		prefix := key + ": "
		if strings.HasPrefix(line, prefix) {
			// pkg appears once per package; keep them all, comma-joined.
			val := strings.TrimPrefix(line, prefix)
			if prev, ok := env[key]; ok && key == "pkg" {
				val = prev + "," + val
			}
			env[key] = val
			return true
		}
	}
	return false
}

func main() {
	label := flag.String("label", "", "label stored in the output document (e.g. before, after)")
	update := flag.String("update", "", "write the run into this combined before/after archive as its 'after' section (preserving 'before') instead of printing to stdout")
	flag.Parse()

	doc := Document{
		Label:     *label,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Env:       map[string]string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if parseEnvLine(line, doc.Env) {
			continue
		}
		if r, ok := parseLine(line); ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "icache-benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Env) == 0 {
		doc.Env = nil
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "icache-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *update != "" {
		if err := updateArchive(*update, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "icache-benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "icache-benchjson: updated %s (%d results)\n", *update, len(doc.Results))
		return
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "icache-benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}

// updateArchive merges doc into the combined archive at path as its
// "after" run. A pre-existing "before" section (the archived baseline) is
// never touched; if the file is new, the run doubles as the baseline.
func updateArchive(path string, doc *Document) error {
	var arch Combined
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &arch); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	arch.After = doc
	if arch.Before == nil {
		arch.Before = doc
	}
	out, err := json.MarshalIndent(&arch, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

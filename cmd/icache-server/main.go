// Command icache-server runs the iCache TCP cache service: the Go server
// of the paper's §IV, serving real sample bytes with the H-cache/L-cache
// policy engine behind the rpc_loader / update_ipersample interfaces.
//
// Usage:
//
//	icache-server -addr :7820 -dataset cifar10 -cache-frac 0.2
//
// Training clients connect with internal/rpc.Client (see cmd/icache-train
// and examples/clientserver).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/icache"
	"icache/internal/obs"
	"icache/internal/overload"
	"icache/internal/rpc"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/trace"
)

// parsePeers decodes "1=host:port,2=host:port" into a peer address map.
// splitAddrs parses a comma-separated address list, trimming blanks.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func parsePeers(s string) (map[dkv.NodeID]string, error) {
	out := make(map[dkv.NodeID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=addr)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id in %q: %v", part, err)
		}
		out[dkv.NodeID(id)] = kv[1]
	}
	return out, nil
}

func datasetByName(name string) (dataset.Spec, error) {
	switch name {
	case "cifar10":
		return dataset.CIFAR10(), nil
	case "imagenet":
		return dataset.ImageNet(), nil
	case "imagenet-10pct":
		return dataset.ImageNetScaled(), nil
	default:
		return dataset.Spec{}, fmt.Errorf("unknown dataset %q (cifar10, imagenet, imagenet-10pct)", name)
	}
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7820", "listen address")
		dsName    = flag.String("dataset", "cifar10", "dataset to serve: cifar10, imagenet, imagenet-10pct")
		dsFile    = flag.String("dataset-file", "", "serve payloads from a packed dataset file (see icache-gen) instead of generating them")
		cacheFrac = flag.Float64("cache-frac", 0.2, "cache size as a fraction of the dataset")
		hShare    = flag.Float64("h-share", 0.9, "fraction of the cache given to the H-region")
		noLCache  = flag.Bool("no-lcache", false, "disable the L-cache (the +HC ablation configuration)")
		prefetchN = flag.Int("prefetch-workers", 4, "async prefetch worker pool size for L-package byte loading (the paper's Fig. 15 knob); 0 disables prefetching")
		clairv    = flag.Bool("clairvoyant", false, "enable planned cross-epoch prefetching: clients that push each epoch's schedule (BeginEpochPlan) get their missing working set pre-placed ahead of access (requires -prefetch-workers > 0)")
		planBW    = flag.Float64("prefetch-bandwidth", 0, "clairvoyant drain budget in bytes/sec; 0 auto-calibrates to half the observed backend fetch throughput")
		seed      = flag.Int64("seed", 42, "server randomness seed")
		ckptPath  = flag.String("checkpoint", "", "warm-restart checkpoint file: load at boot, save at shutdown")
		metricsAt = flag.String("metrics-addr", "", "serve a metrics endpoint on this address (e.g. :7830): JSON at /metrics, Prometheus text at /metrics?format=prom; also arms the per-stage latency histograms")
		traceCSV  = flag.String("trace-csv", "", "dump a request-event trace (policy events + cross-node spans) to this CSV file at shutdown; also arms span recording for traced requests")
		traceMax  = flag.Int("trace-csv-max-mb", 0, "cap the shutdown trace CSV at this many MB, keeping the newest events (0 = unlimited); the previous dump is rotated to <file>.1")
		slowReq   = flag.Duration("slow-request-threshold", 0, "log GetBatch serves slower than this (0 disables; at most one line per 10s)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof and /debug/obs on the metrics address (requires -metrics-addr)")
		nodeID    = flag.Int("node-id", -1, "distributed mode: this node's ID (requires -dir)")
		dirAddr   = flag.String("dir", "", "distributed mode: directory service address, or a comma-separated replica list for a partitioned directory (see icache-dkv)")
		peers     = flag.String("peers", "", "distributed mode: comma-separated id=addr peer list, e.g. 1=host:7820,2=host2:7820")
		leaseTTL  = flag.Duration("lease-ttl", 10*time.Second, "distributed mode: membership lease duration in the directory")
		beatEvery = flag.Duration("heartbeat-interval", 0, "distributed mode: lease renewal period (default lease-ttl/4)")
		scrubEvry = flag.Duration("scrub-interval", 0, "distributed mode: anti-entropy scrub period (default lease-ttl/2)")
		peerBatch = flag.Int("peer-batch", 256, "distributed mode: max remote misses per batched peer read RPC; 0 falls back to serial per-sample peer reads")
		peerInfl  = flag.Int("peer-inflight", 0, "distributed mode: max in-flight frames per multiplexed peer connection (0 selects the client default)")
		maxInfl   = flag.Int("max-inflight", 0, "admission control: max concurrently admitted requests before shedding (0 disables the cap)")
		targetQD  = flag.Duration("target-queue-delay", 0, "admission control: standing queue delay that triggers brownout/shedding, CoDel-style (0 disables the delay ladder)")
		brkThresh = flag.Int("breaker-threshold", 0, "peer circuit breakers: consecutive failures before a peer trips open (0 selects the default; negative disables breakers)")
		defDL     = flag.Duration("default-deadline", 0, "peer RPC deadline when a request carries no budget of its own (0 selects the 1s default)")
	)
	flag.Parse()

	spec, err := datasetByName(*dsName)
	if err != nil {
		log.Fatalf("icache-server: %v", err)
	}
	if *cacheFrac <= 0 || *cacheFrac > 1 {
		log.Fatalf("icache-server: -cache-frac %g outside (0,1]", *cacheFrac)
	}

	backend, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		log.Fatalf("icache-server: %v", err)
	}
	cfg := icache.DefaultConfig(int64(float64(spec.TotalBytes()) * *cacheFrac))
	cfg.HShare = *hShare
	cfg.EnableLCache = !*noLCache
	cfg.PrefetchWorkers = *prefetchN
	cacheSrv, err := icache.NewServer(backend, cfg, sampling.DefaultIIS(), *seed)
	if err != nil {
		log.Fatalf("icache-server: %v", err)
	}
	var source rpc.ByteSource
	if *dsFile != "" {
		fsrc, err := storage.OpenFileSource(*dsFile, spec)
		if err != nil {
			log.Fatalf("icache-server: %v", err)
		}
		defer fsrc.Close()
		source = fsrc
		log.Printf("icache-server: serving payloads from %s", *dsFile)
	} else {
		dsrc, err := storage.NewDataSource(spec)
		if err != nil {
			log.Fatalf("icache-server: %v", err)
		}
		source = dsrc
	}

	var tracer *trace.Recorder
	if *traceCSV != "" {
		tracer = trace.NewRecorder(1 << 20)
		cacheSrv.SetTracer(tracer)
	}

	srv := rpc.NewServer(cacheSrv, source)
	if *clairv {
		srv.SetClairvoyant(rpc.PlanConfig{BandwidthBytesPerSec: *planBW})
		if *planBW > 0 {
			log.Printf("icache-server: clairvoyant planning on (drain budget %.0f bytes/sec)", *planBW)
		} else {
			log.Printf("icache-server: clairvoyant planning on (drain budget auto-calibrated)")
		}
	}
	// The control-plane journal records rare decision events (gate
	// transitions, breaker trips, epoch boundaries, membership flips); it is
	// cheap enough to keep always-on. Install it before EnableDistributed so
	// per-peer breakers pick it up at creation.
	journal := obs.NewJournal(1024)
	srv.SetJournal(journal)
	if *maxInfl > 0 || *targetQD > 0 {
		srv.SetAdmission(overload.NewGate(overload.GateConfig{
			MaxInflight: *maxInfl,
			TargetDelay: *targetQD,
		}))
		log.Printf("icache-server: admission gate armed (max-inflight=%d, target-queue-delay=%s)",
			*maxInfl, *targetQD)
	}
	// Per-stage latency histograms ride with the metrics endpoint (they are
	// what make the Prometheus view useful); cross-node span recording rides
	// with -trace-csv, sharing the policy-event ring so one CSV holds the
	// whole story. Either may be nil — EnableObs treats nil as "off".
	var obsReg *obs.Registry
	if *metricsAt != "" {
		obsReg = obs.NewRegistry()
	}
	if obsReg != nil || tracer != nil {
		srv.EnableObs(obsReg, tracer)
	}
	if *slowReq > 0 {
		srv.SetSlowRequestLog(*slowReq, 10*time.Second)
		log.Printf("icache-server: slow-request log armed at %s", *slowReq)
	}
	if *ckptPath != "" {
		loaded, err := srv.LoadCheckpointFile(*ckptPath, true)
		if err != nil {
			log.Fatalf("icache-server: checkpoint: %v", err)
		}
		if loaded {
			log.Printf("icache-server: warm-restarted from %s (%d H, %d L residents)",
				*ckptPath, cacheSrv.HCacheLen(), cacheSrv.LCacheLen())
		}
	}
	if *dirAddr != "" {
		if *nodeID < 0 {
			log.Fatalf("icache-server: -dir requires -node-id")
		}
		// -dir accepts a comma-separated replica list for a partitioned
		// directory (see icache-dkv -peers); a single address keeps the
		// legacy one-directory client.
		var dirSvc dkv.Service
		if dirAddrs := splitAddrs(*dirAddr); len(dirAddrs) > 1 {
			sharded, err := dkv.DialSharded(dirAddrs, 5*time.Second, dkv.ShardedConfig{FailoverTTL: *leaseTTL})
			if err != nil {
				log.Fatalf("icache-server: directory: %v", err)
			}
			dirSvc = sharded
			log.Printf("icache-server: sharded directory across %d replicas", len(dirAddrs))
		} else {
			dirClient, err := dkv.DialDir(*dirAddr, 5*time.Second)
			if err != nil {
				log.Fatalf("icache-server: directory: %v", err)
			}
			// Directory lookups inherit the peer deadline/breaker knobs: a
			// hung directory costs one bounded stall, then fails fast to
			// local-only operation until a half-open probe recovers it.
			if *defDL > 0 {
				dirClient.SetRPCTimeout(*defDL)
			} else {
				dirClient.SetRPCTimeout(time.Second)
			}
			if *brkThresh >= 0 {
				dirClient.SetBreaker(overload.BreakerConfig{Threshold: *brkThresh})
			}
			dirSvc = dirClient
		}
		peerMap, err := parsePeers(*peers)
		if err != nil {
			log.Fatalf("icache-server: %v", err)
		}
		srv.EnableDistributed(dkv.NodeID(*nodeID), dirSvc, peerMap)
		srv.SetPeerConfig(rpc.PeerConfig{
			Batch:            *peerBatch,
			Inflight:         *peerInfl,
			RPCTimeout:       *defDL,
			BreakerThreshold: *brkThresh,
		})
		if *peerBatch > 0 {
			log.Printf("icache-server: distributed node %d, directory %s, %d peers (batched peer reads, <=%d samples/RPC)",
				*nodeID, *dirAddr, len(peerMap), *peerBatch)
		} else {
			log.Printf("icache-server: distributed node %d, directory %s, %d peers (serial peer reads)",
				*nodeID, *dirAddr, len(peerMap))
		}
		// Join under a fresh lease; a warm restart replays ownership claims
		// for every checkpoint-restored resident (claims a survivor won in
		// the meantime are denied and the local copy is dropped).
		if err := srv.StartMembership(rpc.MembershipConfig{
			LeaseTTL:          *leaseTTL,
			HeartbeatInterval: *beatEvery,
			ScrubInterval:     *scrubEvry,
		}); err != nil {
			log.Fatalf("icache-server: membership: %v", err)
		}
		log.Printf("icache-server: lease ttl %s, heartbeats + anti-entropy scrubbing started", *leaseTTL)
	}
	// The metrics endpoint gets a real http.Server so shutdown is graceful:
	// in-flight scrapes finish (bounded by a timeout) instead of being cut
	// mid-response when the process exits.
	var metricsSrv *http.Server
	var tlStop chan struct{}
	if *metricsAt != "" {
		mux := http.NewServeMux()
		mux.Handle("/healthz", srv.HealthHandler())
		// One snapshot per second for ten minutes of lookback: enough for
		// icache-top's rate windows and for eyeballing a whole fig-13 run,
		// at ~600 small points of memory.
		timeline := obs.NewTimeline(600, srv.TimelinePoint)
		tlStop = make(chan struct{})
		go timeline.Run(time.Second, tlStop)
		mux.Handle("/debug/timeline", timeline.Handler())
		mux.Handle("/debug/journal", journal.Handler(srv.Exemplars()))
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			mux.Handle("/debug/obs", srv.DebugObsHandler())
		}
		mux.Handle("/", srv.MetricsHandler()) // any other path serves metrics
		metricsSrv = &http.Server{Addr: *metricsAt, Handler: mux}
		go func() {
			log.Printf("icache-server: metrics on http://%s/metrics (JSON; ?format=prom for Prometheus), health on /healthz", *metricsAt)
			if *pprofOn {
				log.Printf("icache-server: pprof on http://%s/debug/pprof/, stage summary on /debug/obs", *metricsAt)
			}
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("icache-server: metrics: %v", err)
			}
		}()
	} else if *pprofOn {
		log.Printf("icache-server: -pprof ignored (requires -metrics-addr)")
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("icache-server: shutting down")
		if tlStop != nil {
			close(tlStop)
		}
		if metricsSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := metricsSrv.Shutdown(ctx); err != nil {
				log.Printf("icache-server: metrics shutdown: %v", err)
			}
			cancel()
		}
		if *ckptPath != "" {
			if err := srv.SaveCheckpointFile(*ckptPath); err != nil {
				log.Printf("icache-server: checkpoint save: %v", err)
			} else {
				log.Printf("icache-server: checkpoint saved to %s", *ckptPath)
			}
		}
		if tracer != nil {
			// Rotate the previous dump out of the way so two consecutive
			// runs never overwrite each other's evidence.
			if _, err := os.Stat(*traceCSV); err == nil {
				if err := os.Rename(*traceCSV, *traceCSV+".1"); err != nil {
					log.Printf("icache-server: trace rotate: %v", err)
				}
			}
			if f, err := os.Create(*traceCSV); err != nil {
				log.Printf("icache-server: trace dump: %v", err)
			} else {
				cut, err := tracer.WriteCSVLimited(f, int64(*traceMax)<<20)
				if err != nil {
					log.Printf("icache-server: trace dump: %v", err)
				}
				f.Close()
				log.Printf("icache-server: trace (%d events retained, %d total, %d cut by size cap) dumped to %s",
					tracer.Len(), tracer.Total(), cut, *traceCSV)
			}
		}
		srv.Close()
	}()

	log.Printf("icache-server: dataset %s (%d samples, %d MB), cache %.0f%% (%s), listening on %s",
		spec.Name, spec.NumSamples, spec.TotalBytes()>>20, 100**cacheFrac, cacheSrv, *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Printf("icache-server: %v", err)
	}
}
